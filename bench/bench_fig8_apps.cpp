// Figure 8: application output time for FLASH I/O, Cactus/BenchIO,
// Hartree-Fock and BTIO Class B, normalized to RAID0.
#include "bench_common.hpp"

using namespace csar;

namespace {

using AppFn = wl::WorkloadResult (*)(raid::Rig&);

wl::WorkloadResult run_flash(raid::Rig& rig) {
  wl::FlashParams p;
  p.nprocs = 8;
  p.stripe_unit = 16 * KiB;
  return wl::run_on(rig, wl::flash_io(rig, p));
}
wl::WorkloadResult run_cactus(raid::Rig& rig) {
  wl::CactusParams p;
  return wl::run_on(rig, wl::cactus_benchio(rig, p));
}
wl::WorkloadResult run_hf(raid::Rig& rig) {
  wl::HartreeFockParams p;
  return wl::run_on(rig, wl::hartree_fock(rig, p));
}
wl::WorkloadResult run_btio(raid::Rig& rig) {
  wl::BtioParams p;
  p.cls = wl::BtioClass::B;
  p.nprocs = 9;
  return wl::run_on(rig, wl::btio(rig, p));
}

}  // namespace

int main() {
  const std::uint32_t kServers = 6;
  const auto profile = hw::profile_experimental2003();
  report::banner("F8", "Application output time, normalized to RAID0 — "
                       "Figure 8",
                 bench::setup_line(kServers, 9, "experimental-2003",
                                   64 * KiB) +
                     "; FLASH/Cactus on 8 procs, BTIO-B on 9, HF sequential");
  report::expectations({
      "Hybrid performs comparably to or better than the best of "
      "RAID1/RAID5 on every application",
      "Hartree-Fock is roughly flat across schemes (kernel-module overhead "
      "levels everything)",
  });

  struct App {
    const char* name;
    AppFn fn;
    std::uint32_t nclients;
  };
  const std::vector<App> apps = {{"FLASH-IO", run_flash, 8},
                                 {"Cactus", run_cactus, 8},
                                 {"HartreeFock", run_hf, 1},
                                 {"BTIO-B", run_btio, 9}};

  TextTable t({"app", "RAID0", "RAID1", "RAID5", "Hybrid"});
  std::map<std::pair<std::string, raid::Scheme>, double> norm;
  for (const auto& app : apps) {
    std::map<raid::Scheme, double> secs;
    for (raid::Scheme s : bench::main_schemes()) {
      bench::Rig rig(bench::make_rig(s, kServers, app.nclients, profile));
      secs[s] = sim::to_seconds(app.fn(rig).write_time);
    }
    std::vector<std::string> row = {app.name};
    for (raid::Scheme s : bench::main_schemes()) {
      const double n = secs[s] / secs[raid::Scheme::raid0];
      norm[{app.name, s}] = n;
      row.push_back(TextTable::num(n, 2));
    }
    t.add_row(std::move(row));
  }
  report::table("output time normalized to RAID0 (lower is better)", t);

  bool hybrid_best = true;
  for (const auto& app : apps) {
    const double best = std::min(norm[{app.name, raid::Scheme::raid1}],
                                 norm[{app.name, raid::Scheme::raid5}]);
    if (norm[{app.name, raid::Scheme::hybrid}] > 1.10 * best) {
      hybrid_best = false;
    }
  }
  report::check("Hybrid <= 1.1x the best of RAID1/RAID5 on every app",
                hybrid_best);
  const double hf_spread =
      std::max({norm[{"HartreeFock", raid::Scheme::raid1}],
                norm[{"HartreeFock", raid::Scheme::raid5}],
                norm[{"HartreeFock", raid::Scheme::hybrid}]}) -
      std::min({norm[{"HartreeFock", raid::Scheme::raid1}],
                norm[{"HartreeFock", raid::Scheme::raid5}],
                norm[{"HartreeFock", raid::Scheme::hybrid}]});
  report::check("Hartree-Fock spread across schemes < 0.35", hf_spread < 0.35);
  return report::exit_code();
}
