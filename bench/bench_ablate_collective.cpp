// Ablation A6 (§6.5): what ROMIO's collective buffering buys. "ROMIO
// optimizes small, non-contiguous accesses by merging them into large
// requests when possible" — this bench quantifies it: N ranks write an
// interleaved record pattern either independently (each record its own PVFS
// request) or through the two-phase collective layer (merged into large
// aggregator writes).
#include "bench_common.hpp"
#include "mpiio/collective.hpp"
#include "sim/sync.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kProcs = 4;
constexpr std::uint32_t kSu = 64 * KiB;
constexpr std::uint64_t kRecord = 16 * KiB;   // per-rank record
constexpr std::uint64_t kRounds = 64;         // interleaved rounds

struct Outcome {
  double mbps;
  std::uint64_t overflow;
};

Outcome run(raid::Scheme scheme, bool collective) {
  bench::Rig rig(bench::make_rig(scheme, 6, kProcs,
                                hw::profile_experimental2003()));
  const double mbps = wl::run_on(rig, [](raid::Rig& r,
                                         bool coll) -> sim::Task<double> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    assert(f.ok());
    mpiio::CollectiveFile cf(r, *f, kProcs);
    const sim::Time t0 = r.sim.now();
    sim::WaitGroup wg(r.sim);
    wg.add(kProcs);
    for (std::uint32_t rank = 0; rank < kProcs; ++rank) {
      r.sim.spawn([](raid::Rig&, mpiio::CollectiveFile& file,
                     std::uint32_t rk, bool c,
                     sim::WaitGroup* done) -> sim::Task<void> {
        // Round-robin interleaved records: rank rk owns record
        // (round*kProcs + rk).
        if (c) {
          // One collective call with the rank's whole strided datatype:
          // ROMIO flattens and merges it with the other ranks' pieces.
          std::vector<mpiio::CollectiveFile::Piece> pieces;
          pieces.reserve(kRounds);
          for (std::uint64_t round = 0; round < kRounds; ++round) {
            pieces.push_back({(round * kProcs + rk) * kRecord,
                              Buffer::phantom(kRecord)});
          }
          auto wr = co_await file.write_at_all_v(rk, std::move(pieces));
          assert(wr.ok());
          (void)wr;
        } else {
          // Independent I/O: one PVFS request per record.
          for (std::uint64_t round = 0; round < kRounds; ++round) {
            const std::uint64_t off = (round * kProcs + rk) * kRecord;
            auto wr = co_await file.write_at(rk, off,
                                             Buffer::phantom(kRecord));
            assert(wr.ok());
            (void)wr;
          }
        }
        done->done();
      }(r, cf, rank, coll, &wg));
    }
    co_await wg.wait();
    const double bytes = static_cast<double>(kRecord) * kRounds * kProcs;
    co_return bytes / sim::to_seconds(r.sim.now() - t0) / 1e6;
  }(rig, collective));

  std::uint64_t overflow = 0;
  for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
    overflow += rig.server(s).total_storage().overflow_bytes;
  }
  return {mbps, overflow};
}

}  // namespace

int main() {
  report::banner("A6", "Independent vs collective I/O — §6.5 (ROMIO)",
                 bench::setup_line(6, kProcs, "experimental-2003", kSu) +
                     ", 4 ranks x 64 interleaved 16 KiB records");
  report::expectations({
      "independent: every record is a partial-stripe write (RAID5 RMWs,",
      "Hybrid overflow); collective: the merged region is a handful of",
      "large aggregator writes — all schemes speed up, RAID5 most",
  });

  TextTable t({"scheme", "independent MB/s", "collective MB/s", "speedup",
               "hybrid overflow indep", "collective"});
  for (raid::Scheme s : {raid::Scheme::raid0, raid::Scheme::raid1,
                         raid::Scheme::raid5, raid::Scheme::hybrid}) {
    const Outcome indep = run(s, false);
    const Outcome coll = run(s, true);
    t.add_row({raid::scheme_name(s), TextTable::num(indep.mbps, 1),
               TextTable::num(coll.mbps, 1),
               TextTable::num(coll.mbps / indep.mbps, 2) + "x",
               s == raid::Scheme::hybrid ? format_bytes(indep.overflow) : "-",
               s == raid::Scheme::hybrid ? format_bytes(coll.overflow) : "-"});
    if (s == raid::Scheme::raid5) {
      report::check("RAID5 gains most from merging (>2x)",
                    coll.mbps > 2.0 * indep.mbps);
    }
    if (s == raid::Scheme::hybrid) {
      report::check("collective leaves (almost) no Hybrid overflow",
                    coll.overflow < indep.overflow / 4);
    }
  }
  report::table("interleaved-record write bandwidth", t);
  return report::exit_code();
}
