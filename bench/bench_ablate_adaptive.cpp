// Ablation A10: adaptive per-file scheme selection vs static Hybrid.
//
// One deterministic fault ramp — a lossy client↔server link racking up RPC
// timeouts, then a wipe-crash with online rebuild, plus latent sector
// errors cleared by the closing scrub — is replayed against an identical
// small-write-heavy workload in two configurations:
//
//   static    the file stays Hybrid for the whole storm (the paper's
//             deployment-wide scheme choice)
//   adaptive  the policy engine watches the storm's own telemetry (RPC
//             pressure, health transitions, the file's partial-stripe write
//             ratio) and migrates the small-write-heavy file to RAID1
//             online, before the crash lands
//
// The claim: for a small-write-heavy file under fault pressure, migrating
// to RAID1 shrinks the post-crash repair — a mirror rebuild moves ~2·len
// per lost unit where parity reconstruction moves ~n·len — so the adaptive
// run must beat the static run on rebuild traffic or repair time (MTTR)
// while acknowledging the same workload with zero verify mismatches.
// Both configurations are bit-deterministic; the storm fingerprint of two
// identical adaptive runs must match exactly.
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "fault/storm.hpp"
#include "pvfs/io_server.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kServers = 6;
constexpr std::uint32_t kSu = 32 * KiB;

fault::StormParams storm_params(bool adaptive) {
  fault::StormParams p;
  p.rig.scheme = raid::Scheme::hybrid;
  p.rig.nservers = kServers;
  p.rig.rpc.timeout = sim::ms(150);
  p.rig.rpc.max_attempts = 4;
  p.rig.rpc.backoff = sim::ms(5);
  p.health.interval = sim::ms(100);
  p.file_size = 2 * MiB;
  p.stripe_unit = kSu;
  p.io_size = 4 * KiB;  // always partial-stripe: the Hybrid worst case
  p.ops = 300;
  p.op_gap = sim::ms(8);

  p.adaptive = adaptive;
  if (adaptive) {
    auto& a = p.rig.policy.adaptive;
    a.enabled = true;
    // The lossy link is the early warning; a couple of timed-out attempts
    // are enough to consider the cluster under pressure.
    a.rpc_pressure_threshold = 6;
    a.down_transition_threshold = 1;
    // The preload writes the whole file full-stripe, so the partial share
    // of total traffic stays modest even for a 100%-partial op mix; the
    // threshold is low enough to trip within the first ~50 partial ops,
    // leaving the migration time to finish before the crash lands.
    a.partial_ratio_threshold = 0.05;
    a.min_observed_bytes = 1 * MiB;
  }

  p.plan.seed = 910;
  // Fault ramp: a lossy link between the workload client and server 0
  // (timeouts -> RPC-pressure feed), then a wipe-crash of server 1 with an
  // online rebuild, then latent sector errors for the closing scrub.
  p.plan.crashes.push_back({sim::ms(2000), 1, sim::ms(2600), /*wipe=*/true});
  fault::MediaFault mf;
  mf.at = sim::ms(3000);
  mf.server = 3;
  mf.file = pvfs::IoServer::data_name(1);
  mf.off = 0;
  mf.len = 256 * KiB;
  p.plan.media.push_back(mf);

  raid::Rig probe(p.rig);  // resolve node ids for the lossy link
  fault::LinkFault lf;
  lf.a = probe.client().node_id();
  lf.b = probe.server(0).node_id();
  lf.start = sim::ms(200);
  lf.end = sim::ms(900);
  lf.drop_p = 0.3;
  p.plan.links.push_back(lf);
  return p;
}

void add_row(TextTable& t, const char* name, const fault::StormMetrics& m) {
  char a[16];
  std::snprintf(a, sizeof(a), "%.1f%%", 100.0 * m.availability);
  t.add_row({name, a, TextTable::num(m.migrations_completed),
             format_bytes(m.rebuild_bytes),
             TextTable::num(sim::to_seconds(m.mttr) * 1e3, 1),
             TextTable::num(m.verify_mismatches),
             TextTable::num(m.scrub_repaired)});
}

}  // namespace

int main() {
  report::banner(
      "A10", "Adaptive per-file scheme selection vs static Hybrid",
      "6 I/O servers, 1 client, 4 KiB partial writes on a Hybrid file, "
      "lossy link then wipe-crash + online rebuild");
  report::expectations({
      "the adaptive run migrates the small-write-heavy file to RAID1 before",
      "the crash (early warning = RPC pressure from the lossy link)",
      "post-crash repair shrinks: mirror rebuild moves ~2*len per lost unit",
      "vs ~n*len for parity reconstruction -> less rebuild traffic or lower",
      "MTTR, at zero verify mismatches in both configurations",
      "identical runs produce identical storm fingerprints (bit-determinism)",
  });

  const fault::StormMetrics stat = fault::run_storm(storm_params(false));
  const fault::StormMetrics adap = fault::run_storm(storm_params(true));
  const fault::StormMetrics adap2 = fault::run_storm(storm_params(true));

  TextTable t({"config", "avail", "migrations", "rebuild bytes", "mttr (ms)",
               "mismatch", "scrub fixed"});
  add_row(t, "static hybrid", stat);
  add_row(t, "adaptive", adap);
  report::table("one storm, static vs adaptive scheme selection", t);

  std::printf(
      "JSON {\"bench\":\"ablate_adaptive\",\"static\":{\"rebuild_bytes\":%"
      PRIu64 ",\"mttr_ms\":%.3f,\"mismatches\":%" PRIu64
      "},\"adaptive\":{\"rebuild_bytes\":%" PRIu64
      ",\"mttr_ms\":%.3f,\"mismatches\":%" PRIu64 ",\"migrations\":%" PRIu64
      "},\"fingerprint\":%" PRIu64 "}\n",
      stat.rebuild_bytes, sim::to_seconds(stat.mttr) * 1e3,
      stat.verify_mismatches, adap.rebuild_bytes,
      sim::to_seconds(adap.mttr) * 1e3, adap.verify_mismatches,
      adap.migrations_completed, adap.fingerprint);

  bool ok = true;
  auto check = [&ok](const char* what, bool cond) {
    report::check(what, cond);
    ok = ok && cond;
  };
  check("adaptive run migrated the file before the crash",
        adap.migrations_completed >= 1 && adap.migrations_failed == 0);
  check("static run never migrates", stat.migrations_started == 0);
  check("zero verify mismatches in both configurations",
        stat.verify_mismatches == 0 && adap.verify_mismatches == 0);
  check("both rebuilds completed",
        stat.rebuild_ok && adap.rebuild_ok && stat.rebuilds_completed >= 1 &&
            adap.rebuilds_completed >= 1);
  check("adaptive beats static on rebuild traffic or MTTR",
        adap.rebuild_bytes < stat.rebuild_bytes || adap.mttr < stat.mttr);
  check("adaptive storm is bit-deterministic (fingerprints match)",
        adap.fingerprint == adap2.fingerprint &&
            adap.finished_at == adap2.finished_at);
  return report::exit_code();
}
