// §5.2: partial writes to preexisting files — the previously undocumented
// PVFS performance problem and the write-buffering fix. A client overwrites
// an uncached preexisting file; without buffering, the iod's chunk-granular
// non-blocking receives turn nearly every file block into a partial write
// that must be pre-read from disk.
#include "bench_common.hpp"

using namespace csar;

namespace {

double run_case(bool preexisting, bool buffering, bool padding) {
  auto profile = hw::profile_experimental2003();
  raid::RigParams rp =
      bench::make_rig(raid::Scheme::raid0, 4, 1, profile);
  rp.fs.write_buffering = buffering;
  rp.fs.pad_partial_blocks = padding;
  bench::Rig rig(rp);
  return wl::run_on(
      rig,
      [](raid::Rig& r, bool pre) -> sim::Task<double> {
        auto& fs = r.client_fs();
        auto f = co_await fs.create("f", r.layout(64 * KiB));
        assert(f.ok());
        const std::uint64_t total = 64 * MiB;
        if (pre) {
          auto seed = co_await fs.write(*f, 0, Buffer::phantom(total));
          assert(seed.ok());
          (void)seed;
          auto fl = co_await fs.flush(*f);
          assert(fl.ok());
          (void)fl;
          r.drop_all_caches();
        }
        const sim::Time t0 = r.sim.now();
        // Slightly unaligned request offsets, as applications produce.
        for (std::uint64_t off = 0; off < total; off += 4 * MiB) {
          auto wr = co_await fs.write(*f, off == 0 ? 0 : off + 937,
                                      Buffer::phantom(4 * MiB - 937));
          assert(wr.ok());
          (void)wr;
        }
        co_return static_cast<double>(total) /
            sim::to_seconds(r.sim.now() - t0);
      }(rig, preexisting));
}

}  // namespace

int main() {
  report::banner("S5.2", "Partial writes to preexisting files — §5.2",
                 "4 I/O servers, 1 client, 64 MiB in ~4 MB unaligned "
                 "requests, 8800-byte receive chunks, 4 KiB blocks");
  report::expectations({
      "new file: no pre-reads in any configuration",
      "preexisting uncached file, no buffering: write bandwidth collapses "
      "(one disk pre-read per straddled block)",
      "write buffering restores nearly all of the new-file bandwidth",
      "padding partial blocks performs like buffering (the paper's probe)",
  });

  TextTable t({"configuration", "new file", "preexisting (cold cache)"});
  const double fresh_nobuf = run_case(false, false, false);
  const double pre_nobuf = run_case(true, false, false);
  const double fresh_buf = run_case(false, true, false);
  const double pre_buf = run_case(true, true, false);
  const double pre_pad = run_case(true, false, true);
  t.add_row({"no write buffering", report::mbps(fresh_nobuf),
             report::mbps(pre_nobuf)});
  t.add_row({"write buffering (the fix)", report::mbps(fresh_buf),
             report::mbps(pre_buf)});
  t.add_row({"no buffering + padded partial blocks", "-",
             report::mbps(pre_pad)});
  report::table("RAID0 write bandwidth (MB/s)", t);

  report::check("degradation without buffering > 2x",
                pre_nobuf < 0.5 * fresh_nobuf);
  report::check("buffering recovers >90% of new-file bandwidth",
                pre_buf > 0.9 * fresh_buf);
  report::check("padding recovers the loss too", pre_pad > 0.9 * fresh_nobuf);
  return report::exit_code();
}
