// Table 2: storage requirement (sum of the file sizes at the I/O servers)
// per redundancy scheme, for BTIO classes A/B/C, FLASH I/O at two scales and
// two stripe units, Hartree-Fock and Cactus/BenchIO.
#include <functional>

#include "bench_common.hpp"

using namespace csar;

namespace {

pvfs::StorageInfo total_storage(raid::Rig& rig) {
  pvfs::StorageInfo sum;
  for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
    const auto info = rig.server(s).total_storage();
    sum.data_bytes += info.data_bytes;
    sum.red_bytes += info.red_bytes;
    sum.overflow_bytes += info.overflow_bytes;
  }
  return sum;
}

std::string mb(std::uint64_t bytes) {
  return TextTable::num(static_cast<double>(bytes) / 1e6, 0) + " MB";
}

}  // namespace

int main() {
  const std::uint32_t kServers = 6;  // 5 data units/stripe: Table 2's 1/5
                                     // parity overhead
  const auto profile = hw::profile_osc2003();
  report::banner("T2", "Storage requirement for redundancy schemes — Table 2",
                 bench::setup_line(kServers, 24, "OSC-2003", 64 * KiB));
  report::expectations({
      "RAID1 is exactly 2x RAID0 for every workload",
      "RAID5 is exactly 1.2x RAID0 (1/5 parity with 6 servers)",
      "Hybrid is close to RAID5 for large-write workloads (BTIO, Cactus)",
      "Hybrid exceeds RAID1 for FLASH at the 64K stripe unit "
      "(small writes fragment the overflow regions); 16K is far cheaper",
  });

  struct Row {
    std::string name;
    std::uint32_t nclients;
    std::function<sim::Task<wl::WorkloadResult>(raid::Rig&)> fn;
  };
  auto btio_row = [](wl::BtioClass cls, std::uint32_t procs) {
    return [cls, procs](raid::Rig& rig) {
      wl::BtioParams p;
      p.cls = cls;
      p.nprocs = procs;
      return wl::btio(rig, p);
    };
  };
  auto flash_row = [](std::uint32_t procs, std::uint32_t su) {
    return [procs, su](raid::Rig& rig) {
      wl::FlashParams p;
      p.nprocs = procs;
      p.stripe_unit = su;
      return wl::flash_io(rig, p);
    };
  };
  const std::vector<Row> rows = {
      {"BTIO Class A", 4, btio_row(wl::BtioClass::A, 4)},
      {"BTIO Class B", 4, btio_row(wl::BtioClass::B, 4)},
      {"BTIO Class C", 4, btio_row(wl::BtioClass::C, 4)},
      {"FLASH (4p,16K su)", 4, flash_row(4, 16 * KiB)},
      {"FLASH (4p,64K su)", 4, flash_row(4, 64 * KiB)},
      {"FLASH (24p,16K su)", 24, flash_row(24, 16 * KiB)},
      {"FLASH (24p,64K su)", 24, flash_row(24, 64 * KiB)},
      {"Hartree-Fock", 1,
       [](raid::Rig& rig) { return wl::hartree_fock(rig, {}); }},
      {"CACTUS/BenchIO", 8,
       [](raid::Rig& rig) { return wl::cactus_benchio(rig, {}); }},
  };

  TextTable t({"Benchmark", "RAID0", "RAID1", "RAID5", "Hybrid"});
  bool raid1_double = true;
  bool raid5_ratio = true;
  std::map<std::string, std::map<raid::Scheme, std::uint64_t>> totals;
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (raid::Scheme s : bench::main_schemes()) {
      bench::Rig rig(bench::make_rig(s, kServers, row.nclients, profile));
      (void)wl::run_on(rig, row.fn(rig));
      const auto info = total_storage(rig);
      const std::uint64_t total =
          info.data_bytes + info.red_bytes + info.overflow_bytes;
      totals[row.name][s] = total;
      cells.push_back(mb(total));
    }
    t.add_row(std::move(cells));
    const double r0 = static_cast<double>(totals[row.name][raid::Scheme::raid0]);
    if (std::abs(totals[row.name][raid::Scheme::raid1] - 2.0 * r0) >
        0.02 * r0) {
      raid1_double = false;
    }
    const double r5 =
        static_cast<double>(totals[row.name][raid::Scheme::raid5]) / r0;
    if (r5 < 1.18 || r5 > 1.25) raid5_ratio = false;
  }
  report::table("total storage at the I/O servers", t);

  report::check("RAID1 = 2.0x RAID0 everywhere", raid1_double);
  report::check("RAID5 = ~1.2x RAID0 everywhere", raid5_ratio);
  report::check(
      "Hybrid close to RAID5 for BTIO Class A (mostly full stripes)",
      totals["BTIO Class A"][raid::Scheme::hybrid] <
          1.35 * totals["BTIO Class A"][raid::Scheme::raid5]);
  report::check(
      "Hybrid above RAID1 for FLASH 4p @ 64K stripe unit",
      totals["FLASH (4p,64K su)"][raid::Scheme::hybrid] >
          totals["FLASH (4p,64K su)"][raid::Scheme::raid1]);
  // The paper's 4-proc/16K Hybrid number (74 MB) is well below RAID1; our
  // workload model lands at RAID1's level there (small-request overhead is
  // modeled pessimistically), but the stripe-unit direction — 16K far
  // cheaper than 64K, and below RAID1 at scale — reproduces.
  report::check(
      "Hybrid below RAID1 for FLASH 24p @ 16K stripe unit",
      totals["FLASH (24p,16K su)"][raid::Scheme::hybrid] <
          totals["FLASH (24p,16K su)"][raid::Scheme::raid1]);
  report::check(
      "Hybrid 16K stripe unit far cheaper than 64K (4p)",
      totals["FLASH (4p,16K su)"][raid::Scheme::hybrid] <
          0.8 * totals["FLASH (4p,64K su)"][raid::Scheme::hybrid]);
  return report::exit_code();
}
