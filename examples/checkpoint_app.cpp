// checkpoint_app: a parallel scientific application checkpointing through
// CSAR — the workload class the paper's introduction motivates (§1).
//
// Eight compute processes alternate "compute" phases with collective
// checkpoint writes of a shared file, then restart from the newest
// checkpoint. The example compares the three redundancy schemes on the same
// run and prints where the time went.
#include <cstdio>
#include <vector>

#include "common/units.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"
#include "workloads/harness.hpp"

using namespace csar;

namespace {

struct Outcome {
  double checkpoint_secs;
  double restore_secs;
  std::uint64_t stored_bytes;
};

Outcome run(raid::Scheme scheme) {
  constexpr std::uint32_t kProcs = 8;
  constexpr std::uint32_t kSteps = 4;            // checkpoint rounds
  constexpr std::uint64_t kPerProc = 64 * MiB;   // state per process
  raid::RigParams params;
  params.nservers = 6;
  params.nclients = kProcs;
  params.scheme = scheme;
  raid::Rig rig(params);

  return wl::run_on(rig, [](raid::Rig& r) -> sim::Task<Outcome> {
    Outcome out{};
    auto file = co_await r.client_fs(0).create("checkpoint.h5",
                                               r.layout(64 * KiB));
    assert(file.ok());
    sim::Barrier barrier(r.sim, kProcs);

    // --- checkpoint phases ---
    const sim::Time t0 = r.sim.now();
    sim::WaitGroup wg(r.sim);
    wg.add(kProcs);
    for (std::uint32_t p = 0; p < kProcs; ++p) {
      r.sim.spawn([](raid::Rig& rr, pvfs::OpenFile f, std::uint32_t proc,
                     sim::Barrier* bar, sim::WaitGroup* done)
                      -> sim::Task<void> {
        for (std::uint32_t step = 0; step < kSteps; ++step) {
          // "Compute" between checkpoints.
          co_await rr.sim.sleep(sim::ms(250));
          // Collective checkpoint: each proc writes its slab in 4 MB
          // chunks (like Cactus/BenchIO).
          const std::uint64_t base = proc * kPerProc;
          for (std::uint64_t off = 0; off < kPerProc; off += 4 * MiB) {
            auto wr = co_await rr.client_fs(proc).write(
                f, base + off, Buffer::phantom(4 * MiB));
            assert(wr.ok());
            (void)wr;
          }
          co_await bar->arrive_and_wait();
        }
        done->done();
      }(r, *file, p, &barrier, &wg));
    }
    co_await wg.wait();
    auto fl = co_await r.client_fs(0).flush(*file);
    assert(fl.ok());
    (void)fl;
    out.checkpoint_secs =
        sim::to_seconds(r.sim.now() - t0) - kSteps * 0.25;  // minus compute

    // --- restart: every proc reads its slab back ---
    const sim::Time t1 = r.sim.now();
    sim::WaitGroup rg(r.sim);
    rg.add(kProcs);
    for (std::uint32_t p = 0; p < kProcs; ++p) {
      r.sim.spawn([](raid::Rig& rr, pvfs::OpenFile f, std::uint32_t proc,
                     sim::WaitGroup* done) -> sim::Task<void> {
        auto rd = co_await rr.client_fs(proc).read(f, proc * kPerProc,
                                                   kPerProc);
        assert(rd.ok());
        (void)rd;
        done->done();
      }(r, *file, p, &rg));
    }
    co_await rg.wait();
    out.restore_secs = sim::to_seconds(r.sim.now() - t1);

    auto usage = co_await r.client_fs(0).storage(*file);
    out.stored_bytes =
        usage.data_bytes + usage.red_bytes + usage.overflow_bytes;
    co_return out;
  }(rig));
}

}  // namespace

int main() {
  std::printf("8 procs x 4 checkpoints x 64 MiB, 6 I/O servers\n\n");
  std::printf("%-8s %16s %14s %12s\n", "scheme", "checkpoint I/O", "restore",
              "stored");
  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
      raid::Scheme::hybrid};
  for (raid::Scheme s : schemes) {
    const Outcome o = run(s);
    std::printf("%-8s %14.2f s %12.2f s %12s\n", raid::scheme_name(s).c_str(),
                o.checkpoint_secs, o.restore_secs,
                format_bytes(o.stored_bytes).c_str());
  }
  std::printf(
      "\nNote how Hybrid checkpoints at RAID5-like speed while RAID0 offers\n"
      "no protection at all: a single failed I/O server would lose the\n"
      "checkpoint (see the failure_recovery example).\n");
  return 0;
}
