// concurrent_writers: many clients writing disjoint regions of one shared
// file — the canonical PVFS access pattern — and what the parity-lock
// protocol (§5.1) does for, and costs, each scheme.
//
// Part 1 shows correctness: with RAID5, concurrent partial-stripe writers
// on the same stripe keep parity consistent only because of the locks (the
// NO-LOCK ablation corrupts it). Part 2 shows the price: the same run timed
// across schemes.
#include <cstdio>

#include "common/units.hpp"
#include "pvfs/io_server.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"
#include "workloads/harness.hpp"

using namespace csar;

namespace {

constexpr std::uint32_t kServers = 6;
constexpr std::uint32_t kWriters = 5;  // one per data block of a stripe
constexpr std::uint32_t kSu = 64 * KiB;

struct RunResult {
  bool parity_consistent;
  double secs;
  std::uint64_t lock_waits;
};

RunResult run(raid::Scheme scheme) {
  raid::RigParams params;
  params.nservers = kServers;
  params.nclients = kWriters;
  params.scheme = scheme;
  raid::Rig rig(params);

  return wl::run_on(rig, [](raid::Rig& r) -> sim::Task<RunResult> {
    RunResult out{};
    auto file = co_await r.client_fs(0).create("shared.dat",
                                               r.layout(kSu));
    assert(file.ok());
    const sim::Time t0 = r.sim.now();

    // Each writer owns one block of the same stripe and rewrites it with
    // real (materialized) content, 20 rounds.
    sim::WaitGroup wg(r.sim);
    wg.add(kWriters);
    for (std::uint32_t c = 0; c < kWriters; ++c) {
      r.sim.spawn([](raid::Rig& rr, pvfs::OpenFile f, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        for (int round = 0; round < 20; ++round) {
          Buffer block = Buffer::pattern(
              kSu, client * 1000 + static_cast<std::uint64_t>(round));
          auto wr = co_await rr.client_fs(client).write(
              f, static_cast<std::uint64_t>(client) * kSu, std::move(block));
          assert(wr.ok());
          (void)wr;
        }
        done->done();
      }(r, *file, c, &wg));
    }
    co_await wg.wait();
    out.secs = sim::to_seconds(r.sim.now() - t0);

    for (std::uint32_t s = 0; s < kServers; ++s) {
      out.lock_waits += r.server(s).lock_stats().waits;
    }

    // White-box parity audit: XOR the stripe's data units straight out of
    // the server file systems and compare with the stored parity unit.
    out.parity_consistent = true;
    if (raid::uses_parity(r.p.scheme)) {
      const auto& layout = file->layout;
      Buffer parity = co_await r.server(layout.parity_server(0))
                          .fs()
                          .peek(pvfs::IoServer::red_name(file->handle),
                                layout.parity_local_off(0), kSu);
      Buffer expect = Buffer::real(kSu);
      for (std::uint64_t u = 0; u < kServers - 1; ++u) {
        Buffer unit = co_await r.server(layout.server_of_unit(u))
                          .fs()
                          .peek(pvfs::IoServer::data_name(file->handle),
                                layout.local_unit(u) * kSu, kSu);
        expect.xor_with(unit);
      }
      out.parity_consistent = parity == expect;
    }
    co_return out;
  }(rig));
}

}  // namespace

int main() {
  std::printf("%u writers rewriting the %u blocks of one stripe, 20 rounds\n\n",
              kWriters, kWriters);
  std::printf("%-11s %10s %12s %18s\n", "scheme", "time", "lock waits",
              "parity consistent");
  for (raid::Scheme s :
       {raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
        raid::Scheme::raid5_nolock, raid::Scheme::hybrid}) {
    const RunResult r = run(s);
    std::printf("%-11s %8.3f s %12llu %18s\n", raid::scheme_name(s).c_str(), r.secs,
                static_cast<unsigned long long>(r.lock_waits),
                !raid::uses_parity(s)  ? "n/a"
                : r.parity_consistent ? "yes"
                                      : "NO (corrupted!)");
  }
  std::printf(
      "\nRAID5 pays lock waits to keep the parity block consistent; the\n"
      "NO-LOCK ablation is faster and silently corrupts it. The Hybrid\n"
      "scheme sidesteps the problem entirely: partial-stripe writes go to\n"
      "mirrored overflow regions and need no parity lock at all (§5.1).\n");
  return 0;
}
