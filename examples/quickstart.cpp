// Quickstart: bring up a simulated CSAR cluster, create a file with Hybrid
// redundancy, write, read back, and inspect the storage footprint.
//
//   $ ./examples/quickstart
//
// The Rig assembles everything: a discrete-event simulation, six I/O server
// nodes (disk + page cache + NIC), a metadata manager, and a client running
// the CSAR library. All I/O below happens in simulated time — the program
// itself finishes in milliseconds.
#include <cstdio>

#include "common/units.hpp"
#include "raid/rig.hpp"
#include "workloads/harness.hpp"

using namespace csar;

int main() {
  // 1. Describe the deployment: 6 I/O servers, 1 client, Hybrid redundancy,
  //    on the paper's 8-node testbed hardware profile.
  raid::RigParams params;
  params.nservers = 6;
  params.nclients = 1;
  params.scheme = raid::Scheme::hybrid;
  params.profile = hw::profile_experimental2003();
  raid::Rig rig(params);

  // 2. Everything that touches the (simulated) cluster runs as a coroutine
  //    on the simulation; wl::run_on drives it to completion.
  wl::run_on(rig, [](raid::Rig& r) -> sim::Task<bool> {
    raid::CsarFs& fs = r.client_fs();

    // Create a file striped over all six servers, 64 KiB stripe units.
    auto file = co_await fs.create("demo.dat", r.layout(64 * KiB));
    if (!file.ok()) {
      std::printf("create failed: %s\n", file.error().to_string().c_str());
      co_return false;
    }

    // A large aligned write: full stripes, protected by rotated parity.
    Buffer big = Buffer::pattern(2 * MiB, /*seed=*/1);
    auto w1 = co_await fs.write(*file, 0, big.slice(0, big.size()));
    std::printf("2 MiB full-stripe write: %s (t=%.3f ms)\n",
                w1.ok() ? "ok" : w1.error().to_string().c_str(),
                sim::to_seconds(r.sim.now()) * 1e3);

    // A small unaligned write: goes to mirrored overflow regions instead of
    // a parity read-modify-write.
    Buffer patch = Buffer::pattern(10 * KiB, /*seed=*/2);
    auto w2 = co_await fs.write(*file, 123456, patch.slice(0, patch.size()));
    std::printf("10 KiB partial-stripe write: %s\n",
                w2.ok() ? "ok" : w2.error().to_string().c_str());

    // Reads always return the newest data, overflow included.
    auto rd = co_await fs.read(*file, 123456, patch.size());
    Buffer expect = patch.slice(0, patch.size());
    std::printf("read-back matches: %s\n",
                (rd.ok() && *rd == expect) ? "yes" : "NO");

    // Storage breakdown across the servers (the paper's Table 2 metric).
    auto usage = co_await fs.storage(*file);
    std::printf("storage: data=%s parity=%s overflow=%s\n",
                format_bytes(usage.data_bytes).c_str(),
                format_bytes(usage.red_bytes).c_str(),
                format_bytes(usage.overflow_bytes).c_str());

    // Flush everything to the (simulated) disks.
    auto fl = co_await fs.flush(*file);
    std::printf("flush: %s, simulated time %.3f ms, %llu events\n",
                fl.ok() ? "ok" : "failed",
                sim::to_seconds(r.sim.now()) * 1e3,
                static_cast<unsigned long long>(r.sim.events_executed()));
    co_return rd.ok() && *rd == expect;
  }(rig));

  return 0;
}
