// failure_recovery: losing an I/O server and getting the data back — the
// reason the redundancy schemes exist (§1's "tolerant of single disk
// failures").
//
// The example writes a file with the Hybrid scheme (including partial-stripe
// writes that live only in overflow regions), kills a server, serves
// degraded reads, replaces the disk, rebuilds the server, and verifies the
// file — then shows that RAID0 would simply have lost the data.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "workloads/harness.hpp"

using namespace csar;

namespace {

bool demo(raid::Scheme scheme) {
  raid::RigParams params;
  params.nservers = 5;
  params.nclients = 1;
  params.scheme = scheme;
  raid::Rig rig(params);

  return wl::run_on(rig, [](raid::Rig& r) -> sim::Task<bool> {
    auto& fs = r.client_fs();
    auto file = co_await fs.create("precious.dat", r.layout(16 * KiB));
    assert(file.ok());

    // A realistic mix: bulk data plus small in-place updates, so the Hybrid
    // scheme has both parity-protected stripes and mirrored overflow.
    Rng rng(7);
    std::vector<std::byte> reference(2 * MiB, std::byte{0});
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(reference.size() - 64 * KiB);
      const std::uint64_t len = 1 + rng.below(256 * KiB);
      const std::uint64_t n =
          std::min<std::uint64_t>(len, reference.size() - off);
      Buffer data = Buffer::pattern(n, rng.next());
      auto src = data.bytes();
      std::copy(src.begin(), src.end(),
                reference.begin() + static_cast<std::ptrdiff_t>(off));
      auto wr = co_await fs.write(*file, off, std::move(data));
      assert(wr.ok());
      (void)wr;
    }
    const Buffer expect = Buffer::from_bytes(std::move(reference));

    // --- disaster strikes server 2 ---
    std::printf("  [t=%7.3fs] server 2 fails\n",
                sim::to_seconds(r.sim.now()));
    r.server(2).fail();

    auto rec = r.recovery();
    auto degraded = co_await rec.degraded_read(*file, 0, expect.size(), 2);
    if (!degraded.ok()) {
      std::printf("  degraded read: FAILED (%s)\n",
                  degraded.error().to_string().c_str());
      co_return false;
    }
    std::printf("  degraded read while down: %s\n",
                (*degraded == expect) ? "contents intact" : "CORRUPTED");

    // --- replace the disk and rebuild ---
    r.server(2).wipe();     // blank replacement disk
    r.server(2).recover();  // back online
    const sim::Time t0 = r.sim.now();
    auto rebuilt = co_await rec.rebuild_server(*file, 2, expect.size());
    assert(rebuilt.ok());
    (void)rebuilt;
    std::printf("  rebuild of server 2 took %.3f simulated seconds\n",
                sim::to_seconds(r.sim.now() - t0));

    auto verify = co_await fs.read(*file, 0, expect.size());
    const bool ok = verify.ok() && *verify == expect;
    std::printf("  post-rebuild verification: %s\n",
                ok ? "contents intact" : "CORRUPTED");

    // The rebuilt redundancy must survive the *next* failure too.
    r.server(4).fail();
    auto second = co_await rec.degraded_read(*file, 0, expect.size(), 4);
    const bool ok2 = second.ok() && *second == expect;
    std::printf("  tolerates a subsequent failure of server 4: %s\n",
                ok2 ? "yes" : "NO");
    r.server(4).recover();
    co_return ok && ok2;
  }(rig));
}

}  // namespace

int main() {
  for (raid::Scheme s :
       {raid::Scheme::raid1, raid::Scheme::raid5, raid::Scheme::hybrid}) {
    std::printf("%s:\n", raid::scheme_name(s).c_str());
    const bool ok = demo(s);
    std::printf("  => %s\n\n", ok ? "recovered" : "DATA LOSS");
  }

  // And the cautionary tale: plain PVFS striping.
  std::printf("RAID0 (plain PVFS):\n");
  raid::RigParams params;
  params.nservers = 5;
  params.scheme = raid::Scheme::raid0;
  raid::Rig rig(params);
  const bool lost = wl::run_on(rig, [](raid::Rig& r) -> sim::Task<bool> {
    auto file = co_await r.client_fs().create("doomed.dat",
                                              r.layout(16 * KiB));
    assert(file.ok());
    auto wr = co_await r.client_fs().write(*file, 0,
                                           Buffer::pattern(1 * MiB, 1));
    assert(wr.ok());
    (void)wr;
    r.server(2).fail();
    auto rec = r.recovery();
    auto rd = co_await rec.degraded_read(*file, 0, 1 * MiB, 2);
    co_return !rd.ok();
  }(rig));
  std::printf("  server 2 fails -> %s\n",
              lost ? "data is unrecoverable (as the paper warns, §1)"
                   : "unexpectedly recovered?!");
  return 0;
}
