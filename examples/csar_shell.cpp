// csar_shell: a scriptable command shell driving a simulated CSAR cluster —
// poke at the system interactively or pipe a script in.
//
//   $ ./examples/csar_shell [nservers] [scheme]
//   csar> create data 65536
//   csar> write data 0 1048576
//   csar> fail 2
//   csar> read data 0 1048576        # transparently degraded
//   csar> wipe 2 ; recover 2 ; rebuild data 2
//   csar> scrub data ; stat data ; diag ; quit
//
// Every command reports the simulated time it consumed. Written data uses
// deterministic patterns, and reads are verified against a local reference
// model, so any redundancy bug surfaces as "CORRUPT".
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/units.hpp"
#include "raid/diagnostics.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "raid/scrub.hpp"
#include "workloads/harness.hpp"

using namespace csar;

namespace {

struct ShellFile {
  pvfs::OpenFile handle;
  std::vector<std::byte> reference;  // expected contents

  void remember(std::uint64_t off, const Buffer& data) {
    if (reference.size() < off + data.size()) {
      reference.resize(off + data.size(), std::byte{0});
    }
    auto src = data.bytes();
    std::copy(src.begin(), src.end(),
              reference.begin() + static_cast<std::ptrdiff_t>(off));
  }

  Buffer expected(std::uint64_t off, std::uint64_t len) const {
    Buffer b = Buffer::real(len);
    const std::uint64_t avail =
        off < reference.size()
            ? std::min<std::uint64_t>(len, reference.size() - off)
            : 0;
    if (avail > 0) {
      std::copy(reference.begin() + static_cast<std::ptrdiff_t>(off),
                reference.begin() + static_cast<std::ptrdiff_t>(off + avail),
                b.mutable_bytes().begin());
    }
    return b;
  }
};

void help() {
  std::puts(
      "commands:\n"
      "  create <name> [stripe_unit]      make a file\n"
      "  write <name> <off> <len> [seed]  write patterned data\n"
      "  read <name> <off> <len>          read + verify (failover-aware)\n"
      "  fail <server> | recover <server> | wipe <server>\n"
      "  rebuild <name> <server>          reconstruct a replaced server\n"
      "  scrub <name>                     audit redundancy consistency\n"
      "  repair <name>                    audit and rewrite redundancy\n"
      "  compact <name>                   run the overflow cleaner (Hybrid)\n"
      "  stat <name>                      storage breakdown\n"
      "  diag                             per-server hardware counters\n"
      "  time                             current simulated time\n"
      "  help | quit");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nservers =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 5;
  const raid::Scheme scheme =
      argc > 2 ? raid::parse_scheme(argv[2]).value_or(raid::Scheme::hybrid)
               : raid::Scheme::hybrid;

  raid::RigParams params;
  params.nservers = nservers;
  params.scheme = scheme;
  raid::Rig rig(params);
  std::map<std::string, ShellFile> files;
  std::uint64_t seed_counter = 1;

  std::printf("csar shell: %u I/O servers, %s scheme (type 'help')\n",
              nservers, raid::scheme_name(scheme).c_str());

  std::string line;
  while (std::printf("csar> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;
    const sim::Time before = rig.sim.now();

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      help();
      continue;
    }
    if (cmd == "time") {
      std::printf("t = %.6f s, %llu events\n", sim::to_seconds(rig.sim.now()),
                  static_cast<unsigned long long>(rig.sim.events_executed()));
      continue;
    }
    if (cmd == "diag") {
      raid::rig_stats_table(rig).print();
      continue;
    }
    if (cmd == "fail" || cmd == "recover" || cmd == "wipe") {
      std::uint32_t s = 0;
      if (!(in >> s) || s >= nservers) {
        std::puts("bad server index");
        continue;
      }
      if (cmd == "fail") rig.server(s).fail();
      if (cmd == "recover") rig.server(s).recover();
      if (cmd == "wipe") rig.server(s).wipe();
      std::printf("server %u %sed\n", s, cmd.c_str());
      continue;
    }

    std::string name;
    if (!(in >> name)) {
      std::puts("missing file name (try 'help')");
      continue;
    }

    if (cmd == "create") {
      std::uint32_t su = 64 * KiB;
      in >> su;
      auto f = wl::run_on(rig, rig.client_fs().create(name, rig.layout(su)));
      if (!f.ok()) {
        std::printf("create failed: %s\n", f.error().to_string().c_str());
        continue;
      }
      files[name] = ShellFile{*f, {}};
      std::printf("created '%s' (handle %llu, su %s)\n", name.c_str(),
                  static_cast<unsigned long long>(f->handle),
                  format_bytes(su).c_str());
      continue;
    }

    auto it = files.find(name);
    if (it == files.end()) {
      std::printf("unknown file '%s'\n", name.c_str());
      continue;
    }
    ShellFile& file = it->second;

    if (cmd == "write") {
      std::uint64_t off = 0;
      std::uint64_t len = 0;
      std::uint64_t seed = seed_counter++;
      if (!(in >> off >> len)) {
        std::puts("usage: write <name> <off> <len> [seed]");
        continue;
      }
      in >> seed;
      Buffer data = Buffer::pattern(len, seed);
      file.remember(off, data);
      auto wr = wl::run_on(
          rig, rig.client_fs().write(file.handle, off, std::move(data)));
      std::printf("%s (%.3f ms simulated)\n",
                  wr.ok() ? "ok" : wr.error().to_string().c_str(),
                  sim::to_seconds(rig.sim.now() - before) * 1e3);
    } else if (cmd == "read") {
      std::uint64_t off = 0;
      std::uint64_t len = 0;
      if (!(in >> off >> len)) {
        std::puts("usage: read <name> <off> <len>");
        continue;
      }
      auto rd = wl::run_on(
          rig, rig.client_fs().read_resilient(file.handle, off, len));
      if (!rd.ok()) {
        std::printf("read failed: %s\n", rd.error().to_string().c_str());
        continue;
      }
      const bool match = *rd == file.expected(off, len);
      std::printf("%s %s (%.3f ms simulated)\n", format_bytes(len).c_str(),
                  match ? "verified" : "CORRUPT",
                  sim::to_seconds(rig.sim.now() - before) * 1e3);
    } else if (cmd == "rebuild") {
      std::uint32_t s = 0;
      if (!(in >> s) || s >= nservers) {
        std::puts("usage: rebuild <name> <server>");
        continue;
      }
      raid::Recovery rec = rig.recovery();
      auto rb = wl::run_on(
          rig, rec.rebuild_server(file.handle, s, file.reference.size()));
      std::printf("%s (%.3f ms simulated)\n",
                  rb.ok() ? "rebuilt" : rb.error().to_string().c_str(),
                  sim::to_seconds(rig.sim.now() - before) * 1e3);
    } else if (cmd == "scrub" || cmd == "repair") {
      raid::Scrubber scrub(rig.client(), scheme);
      auto report = wl::run_on(
          rig, cmd == "scrub"
                   ? scrub.verify(file.handle, file.reference.size())
                   : scrub.repair(file.handle, file.reference.size()));
      if (!report.ok()) {
        std::printf("scrub failed: %s\n",
                    report.error().to_string().c_str());
        continue;
      }
      std::printf(
          "groups=%llu parity-bad=%llu mirrors=%llu mirror-bad=%llu "
          "overflow-bad=%llu repaired=%llu -> %s\n",
          static_cast<unsigned long long>(report->groups_checked),
          static_cast<unsigned long long>(report->parity_mismatches),
          static_cast<unsigned long long>(report->mirror_units_checked),
          static_cast<unsigned long long>(report->mirror_mismatches),
          static_cast<unsigned long long>(report->overflow_mismatches),
          static_cast<unsigned long long>(report->repaired),
          report->clean() ? "clean" : "INCONSISTENT");
    } else if (cmd == "compact") {
      auto rc = wl::run_on(
          rig, rig.client_fs().compact(file.handle, file.reference.size()));
      std::printf("%s (%.3f ms simulated)\n",
                  rc.ok() ? "compacted" : rc.error().to_string().c_str(),
                  sim::to_seconds(rig.sim.now() - before) * 1e3);
    } else if (cmd == "stat") {
      auto usage = wl::run_on(rig, rig.client_fs().storage(file.handle));
      std::printf("data=%s parity/mirror=%s overflow=%s total=%s\n",
                  format_bytes(usage.data_bytes).c_str(),
                  format_bytes(usage.red_bytes).c_str(),
                  format_bytes(usage.overflow_bytes).c_str(),
                  format_bytes(usage.data_bytes + usage.red_bytes +
                               usage.overflow_bytes)
                      .c_str());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
