// fault_storm: the robustness capstone — a deployment survives a scripted
// storm of faults with no test-side choreography at all.
//
// A FaultPlan crashes a server mid-workload (it rejoins on a blank disk),
// drops a third of the messages on one client link, makes another disk
// fail-slow and plants latent sector errors under a fourth server's data —
// while a seeded read/write mix keeps running. The client stack is on its
// own: RPC deadlines + retry with jittered backoff, the HealthMonitor's
// probe deadlines, transparent failover through the degraded paths, a
// rebuild when the crashed server rejoins, and a scrub pass that rewrites
// the unreadable sectors from redundancy. Every acknowledged read is
// verified against a shadow copy; the run is bit-deterministic, so the
// numbers below are stable across machines and runs.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "fault/storm.hpp"
#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pvfs/io_server.hpp"
#include "raid/migrate.hpp"
#include "raid/rig.hpp"
#include "report/report.hpp"
#include "workloads/harness.hpp"
#include "workloads/open_loop.hpp"

using namespace csar;

namespace {

fault::StormParams storm_params(raid::Scheme scheme) {
  fault::StormParams p;
  p.rig.scheme = scheme;
  p.rig.nservers = 4;
  p.rig.rpc.timeout = sim::ms(150);
  p.rig.rpc.max_attempts = 4;
  p.rig.rpc.backoff = sim::ms(5);
  p.health.interval = sim::ms(100);
  p.file_size = 2 * MiB;
  p.stripe_unit = 32 * KiB;
  p.io_size = 32 * KiB;
  p.ops = 300;
  p.op_gap = sim::ms(8);

  p.plan.seed = 77;
  p.plan.crashes.push_back({sim::ms(400), 1, sim::ms(1200), /*wipe=*/true});
  fault::SlowDisk sd;
  sd.start = sim::ms(500);
  sd.end = sim::ms(800);
  sd.server = 0;
  sd.factor = 3.0;
  p.plan.slow_disks.push_back(sd);
  fault::MediaFault mf;
  mf.at = sim::ms(2500);
  mf.server = 3;
  mf.file = pvfs::IoServer::data_name(1);
  mf.off = 0;
  mf.len = 1 * MiB;
  p.plan.media.push_back(mf);
  return p;
}

/// The lossy link needs real node ids, which depend on the rig build order;
/// resolve them against a throwaway rig of the same shape.
void add_lossy_link(fault::StormParams& p) {
  raid::Rig probe(p.rig);
  fault::LinkFault lf;
  lf.a = probe.client().node_id();
  lf.b = probe.server(2).node_id();
  lf.start = sim::ms(300);
  lf.end = sim::ms(900);
  lf.drop_p = 0.3;
  p.plan.links.push_back(lf);
}

/// One more hybrid storm with the observability layer attached: every RPC,
/// fabric transfer, server stage, lock wait and disk access lands as a span;
/// faults and rebuild phases as instants. Sim-time only, so the dump is
/// byte-identical across reruns.
void traced_run(const std::string& trace_path,
                const std::string& metrics_path) {
  obs::Tracer tracer;
  obs::Registry metrics;
  fault::StormParams p = storm_params(raid::Scheme::hybrid);
  add_lossy_link(p);
  p.tracer = trace_path.empty() ? nullptr : &tracer;
  p.metrics = metrics_path.empty() ? nullptr : &metrics;
  p.sample_window = sim::ms(50);
  fault::StormMetrics m = fault::run_storm(p);
  if (!trace_path.empty()) {
    report::check("trace written (open in Perfetto / chrome://tracing)",
                  tracer.write_file(trace_path));
    std::printf("  %s: %zu spans, %zu instants, finished at t=%.0fms\n",
                trace_path.c_str(), tracer.span_count(),
                tracer.instant_count(), sim::to_seconds(m.finished_at) * 1e3);
  }
  if (!metrics_path.empty()) {
    const bool json =
        metrics_path.size() > 5 &&
        metrics_path.compare(metrics_path.size() - 5, 5, ".json") == 0;
    report::check("metrics written", metrics.write_file(metrics_path, json));
    std::printf("  %s (+%zu utilization sample rows)\n", metrics_path.c_str(),
                static_cast<std::size_t>(
                    m.samples_csv.empty()
                        ? 0
                        : std::count(m.samples_csv.begin(),
                                     m.samples_csv.end(), '\n') -
                              1));
  }
}

// --- opt-in fleet storm (--fleet) ------------------------------------
// The PACEMAKER controller under the fault classes the A15 ablation
// deliberately keeps out of its latency contrast: transient server crashes
// and whole-domain (rack) outages, all derived from the fleet's own bathtub
// AFR curves. Budgeted rs(4,2)<->rs(6,3) transitions run concurrently with
// the outages; the run is bit-deterministic and executed twice to prove it.

fleet::FleetParams fleet_storm_params() {
  fleet::FleetParams fp;
  fp.group_size = 3;
  // Cohort ages at t=0: g0 = 3.0y (hits wearout mid-run), g1 = 1.0y
  // (useful life), g2 = 0y (infancy). 4 s at 0.5 y/s = two fleet-years.
  fp.group0_age_years = 3.0;
  fp.group_age_step_years = 2.0;
  fp.years_per_sim_sec = 0.5;
  fp.lead_years = 0.1;
  fp.decision_interval = sim::ms(50);
  fp.transition_budget_bps = 8e6;
  fp.max_concurrent = 2;
  fp.fault_boost = 25.0;          // compressed timeline needs visible events
  fp.media_fraction = 0.4;        // latent sector errors AND server crashes
  fp.group_outage_per_year = 1.0; // plus shared rack/power outages
  return fp;
}

struct FleetOutcome {
  wl::OpenLoopStats ol;
  fleet::FleetStats fs;
  std::uint64_t migs_completed = 0;
  std::uint64_t budget_bytes = 0;
  fault::FaultStats faults;
  std::uint64_t events = 0;
  double sim_seconds = 0;
};

FleetOutcome run_fleet_storm() {
  constexpr std::uint32_t kTenants = 16;
  const sim::Duration kRun = sim::ms(4000);

  raid::RigParams rp;
  rp.scheme = raid::Scheme::rs(4, 2);
  rp.nservers = 9;
  rp.nclients = 4;
  rp.rpc.timeout = sim::ms(150);
  rp.rpc.max_attempts = 4;
  rp.rpc.backoff = sim::ms(5);
  raid::Rig rig(rp);

  fleet::FleetParams fp = fleet_storm_params();
  fleet::FleetModel model(rig, fp);

  fault::FaultPlan plan = model.derive_fault_plan(kRun, sim::ms(20), kTenants);
  std::vector<pvfs::IoServer*> server_ptrs;
  for (auto& s : rig.servers) server_ptrs.push_back(s.get());
  fault::FaultInjector inj(rig.cluster, rig.fabric, std::move(server_ptrs),
                           std::move(plan));
  inj.start();

  raid::SchemeMigrator mig(rig);
  fleet::FleetController ctl(rig, mig, model, fp);

  wl::OpenLoopParams olp;
  olp.ntenants = kTenants;
  olp.total_rate = 25.0 * kTenants;
  olp.duration = kRun;
  olp.max_outstanding = 8;
  olp.request_bytes = 16 * KiB;
  olp.stripe_unit = 64 * KiB;
  olp.file_extent = 2 * MiB;
  olp.seed = 0x57042F1EE7ULL;
  olp.rotate_base = true;
  olp.on_file_created = [&ctl](std::uint32_t tenant, const std::string& name,
                               const pvfs::OpenFile& f, std::uint64_t extent) {
    ctl.register_file(tenant, name, f, extent);
  };
  mig.start();
  ctl.start();

  FleetOutcome o;
  o.ol = wl::run_on(
      rig,
      [](raid::Rig& r, const wl::OpenLoopParams& p, raid::SchemeMigrator& m,
         fleet::FleetController& c) -> sim::Task<wl::OpenLoopStats> {
        wl::OpenLoopStats stats = co_await wl::run_open_loop(r, p);
        while (!m.idle()) co_await r.sim.sleep(sim::ms(5));
        c.stop();
        m.stop();
        co_return stats;
      }(rig, olp, mig, ctl));
  o.fs = ctl.stats();
  o.migs_completed = mig.stats().migrations_completed;
  o.budget_bytes = ctl.budget_bytes_taken();
  o.faults = inj.stats();
  o.events = rig.sim.events_executed();
  o.sim_seconds = sim::to_seconds(rig.sim.now());
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  // Mixed-scheme storm file set. Parsed with parse_scheme_list, which
  // splits on depth-0 commas only — "rs(4,2)" is one element, not two.
  std::string scheme_list = "rs(4,2),raid1,rs(4,2)";
  bool perf = false;
  bool fleet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--schemes=", 10) == 0) {
      scheme_list = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--perf") == 0) {
      perf = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=out.json] [--metrics=out.csv] "
                   "[--schemes=rs(4,2),raid1,...] [--fleet] [--perf]\n",
                   argv[0]);
      return 2;
    }
  }
  const auto mixed_schemes = raid::parse_scheme_list(scheme_list);
  if (!mixed_schemes) {
    std::fprintf(stderr, "unparsable --schemes list: %s\n",
                 scheme_list.c_str());
    return 2;
  }

  // --perf instruments the whole run from here; it only *appends* output, so
  // the determinism diff on the default invocation is untouched.
  const auto perf_t0 = std::chrono::steady_clock::now();
  std::uint64_t perf_events = 0;
  double perf_sim_seconds = 0;

  report::banner("fault-storm", "Deterministic fault storm, survived end to end",
                 "4 I/O servers, 1 client, 150 ms RPC deadline x4 attempts, "
                 "100 ms health probes");
  std::printf(
      "  plan: crash+wipe server 1 @400ms (back @1200ms), 30%% loss on the\n"
      "  server-2 link [300,900)ms, server-0 disk 3x slow [500,800)ms,\n"
      "  1 MiB of latent sector errors under server 3 @2500ms\n\n");

  TextTable t({"scheme", "avail", "retries", "timeouts", "degraded",
               "reactive", "detect ms", "MTTR ms", "scrub fix", "mismatch"});
  bool all_ok = true;
  std::uint64_t mismatches = 0;
  for (raid::Scheme scheme :
       {raid::Scheme::raid1, raid::Scheme::raid5, raid::Scheme::hybrid}) {
    fault::StormParams p = storm_params(scheme);
    add_lossy_link(p);
    fault::StormMetrics m = fault::run_storm(p);
    perf_events += m.events_executed;
    perf_sim_seconds += sim::to_seconds(m.finished_at);
    char avail[16];
    std::snprintf(avail, sizeof(avail), "%.1f%%", 100.0 * m.availability);
    t.add_row({scheme_name(scheme), avail, std::to_string(m.rpc_retries),
           std::to_string(m.rpc_timeouts),
           std::to_string(m.degraded_reads + m.degraded_writes),
           std::to_string(m.reactive_failovers),
           std::to_string(m.detection_latency / sim::ms(1)),
           std::to_string(m.mttr / sim::ms(1)),
           std::to_string(m.scrub_repaired),
           std::to_string(m.verify_mismatches)});
    all_ok = all_ok && m.rebuild_ok;
    mismatches += m.verify_mismatches;
  }
  report::table("one identical storm per scheme", t);
  report::check("every acknowledged read matched the shadow copy",
                mismatches == 0);
  report::check("every scheduled rebuild completed", all_ok);

  // Unquiesced verification sweep: the same storm shape on the hybrid
  // scheme across independent seeds (workload and fault-plan RNG both
  // vary). The writer never pauses for the rebuild — the coordinator's
  // dirty-interval re-copy is the only thing standing between a moving
  // write stream and a stale replacement disk, so a single missed region
  // shows up as a shadow mismatch here.
  std::printf("\n");
  report::banner("storm-sweep", "Unquiesced rebuild, multi-seed verification",
                 "hybrid scheme, 3 independent seeds, writer never paused");
  TextTable sweep({"seed", "dirty KiB", "recopy", "MTTR ms", "mismatch"});
  bool sweep_ok = true;
  for (std::uint64_t seed : {42ULL, 1337ULL, 2718ULL}) {
    fault::StormParams p = storm_params(raid::Scheme::hybrid);
    p.workload_seed = seed;
    p.plan.seed = seed ^ 0xF00D;
    add_lossy_link(p);
    fault::StormMetrics m = fault::run_storm(p);
    perf_events += m.events_executed;
    perf_sim_seconds += sim::to_seconds(m.finished_at);
    sweep.add_row({std::to_string(seed),
                   std::to_string(m.dirty_bytes_tracked / KiB),
                   std::to_string(m.recopy_passes),
                   std::to_string(m.mttr / sim::ms(1)),
                   std::to_string(m.verify_mismatches)});
    sweep_ok = sweep_ok && m.rebuild_ok && m.verify_mismatches == 0 &&
               m.rebuilds_completed >= 1;
  }
  report::table("same storm, three seeds", sweep);
  report::check("all seeds: online rebuild completed, zero mismatches",
                sweep_ok);

  // Manager-crash storm: now the metadata manager itself is the fault
  // target. It crashes twice mid-storm — once while a scheme migration is
  // copying, so the migrator's fenced persist is rejected and post-replay
  // reconciliation must resume the flip; the second crash loses the
  // unsynced journal tail. The workload never pauses (data ops bypass the
  // manager), the final metadata audit must find zero divergence between
  // the replayed manager and the live cluster, and two identical runs must
  // produce the same fingerprint byte for byte.
  std::printf("\n");
  report::banner("mgr-storm", "Manager crashes + journal replay mid-storm",
                 "raid0 file migrating to raid1; crash #1 mid-migration, "
                 "crash #2 wipes the unsynced journal tail");
  auto mgr_params = [] {
    fault::StormParams p = storm_params(raid::Scheme::raid0);
    p.plan.crashes.clear();  // the manager, not a data server, is the victim
    p.plan.media.clear();
    p.migrate_file = 0;
    p.migrate_to = raid::Scheme::raid1;
    p.migrate_at = sim::ms(600);
    // Pace the copy (~260 ms for 2 MiB) so crash #1 lands inside it, and
    // give migration RPCs real deadlines so the lossy link cannot stall a
    // copy pass for the full legacy 30 s timeout.
    p.migrate.rate_cap = 8e6;
    p.migrate.rpc = pvfs::RpcPolicy{sim::ms(150), 4, sim::ms(5), 0.5};
    p.plan.mgr_crashes.push_back({sim::ms(700), sim::ms(760), false});
    p.plan.mgr_crashes.push_back({sim::ms(1800), sim::ms(1900), true});
    add_lossy_link(p);
    return p;
  };
  const fault::StormMetrics g1 = fault::run_storm(mgr_params());
  const fault::StormMetrics g2 = fault::run_storm(mgr_params());
  perf_events += g1.events_executed + g2.events_executed;
  perf_sim_seconds +=
      sim::to_seconds(g1.finished_at) + sim::to_seconds(g2.finished_at);
  TextTable mt({"run", "avail", "mgr crashes", "replays", "replayed recs",
                "migr started", "meta mismatch", "data mismatch"});
  for (const auto* m : {&g1, &g2}) {
    char avail[16];
    std::snprintf(avail, sizeof(avail), "%.1f%%", 100.0 * m->availability);
    mt.add_row({m == &g1 ? "A" : "B", avail,
                std::to_string(m->mgr_crashes),
                std::to_string(m->mgr_replays),
                std::to_string(m->mgr_replayed_records),
                std::to_string(m->migrations_started),
                std::to_string(m->meta_mismatches),
                std::to_string(m->verify_mismatches)});
  }
  report::table("same manager-crash storm, run twice", mt);
  report::check("both manager crashes replayed (journal + checkpoint)",
                g1.mgr_crashes == 2 && g1.mgr_replays == 2);
  report::check("metadata audit clean after replay + reconciliation",
                g1.meta_mismatches == 0);
  report::check("zero data mismatches through the manager outages",
                g1.verify_mismatches == 0);
  report::check("the migration was attempted mid-crash-window",
                g1.migrations_started >= 1);
  report::check("manager-crash storm is bit-deterministic",
                g1.fingerprint == g2.fingerprint &&
                    g1.finished_at == g2.finished_at &&
                    g1.events_executed == g2.events_executed);

  // Erasure-coded storm: a mixed-scheme file set where two servers are
  // crashed AND wiped with overlapping outage windows. rs(4,2) tolerates
  // both at once (any 4 of its 6 fragments decode every group); the raid1
  // file's ops fail while two servers are out — failed writes taint their
  // bytes and are excluded — but nothing acknowledged may ever come back
  // wrong. Both wiped disks are rebuilt online, each decode routing around
  // the *other* victim while it is still down.
  std::printf("\n");
  report::banner("ec-storm", "Mixed rs(4,2) storm, two concurrent wipes",
                 ("files: " + scheme_list +
                  "; crash+wipe servers 1 @400ms and 3 @600ms, "
                  "overlapping until 1600/1800ms")
                     .c_str());
  // rs(k,m) places k+m fragments on distinct servers, so the rig must be at
  // least as wide as the widest scheme in the mix (6 covers the classics).
  std::uint32_t ec_nservers = 6;
  for (const raid::Scheme& s : *mixed_schemes) {
    if (s.kind == raid::SchemeKind::rs) {
      ec_nservers = std::max<std::uint32_t>(ec_nservers, s.k + s.m);
    }
  }
  auto ec_params = [&] {
    fault::StormParams p = storm_params(raid::Scheme::hybrid);
    p.rig.nservers = ec_nservers;
    p.file_schemes = *mixed_schemes;
    p.nfiles = static_cast<std::uint32_t>(mixed_schemes->size());
    p.plan.crashes.clear();
    p.plan.media.clear();
    p.plan.crashes.push_back({sim::ms(400), 1, sim::ms(1600), /*wipe=*/true});
    p.plan.crashes.push_back({sim::ms(600), 3, sim::ms(1800), /*wipe=*/true});
    add_lossy_link(p);
    return p;
  };
  const fault::StormMetrics e1 = fault::run_storm(ec_params());
  const fault::StormMetrics e2 = fault::run_storm(ec_params());
  perf_events += e1.events_executed + e2.events_executed;
  perf_sim_seconds +=
      sim::to_seconds(e1.finished_at) + sim::to_seconds(e2.finished_at);
  TextTable et({"run", "avail", "degraded", "rebuilds", "rebuild MiB",
                "tainted KiB", "mismatch"});
  for (const auto* m : {&e1, &e2}) {
    char avail[16];
    std::snprintf(avail, sizeof(avail), "%.1f%%", 100.0 * m->availability);
    et.add_row({m == &e1 ? "A" : "B", avail,
                std::to_string(m->degraded_reads + m->degraded_writes),
                std::to_string(m->rebuilds_completed),
                std::to_string(m->rebuild_bytes / MiB),
                std::to_string(m->tainted_bytes / KiB),
                std::to_string(m->verify_mismatches)});
  }
  report::table("same double-wipe storm, run twice", et);
  report::check("zero mismatches across two concurrent server wipes",
                e1.verify_mismatches == 0);
  report::check("both wiped servers rebuilt and re-admitted online",
                e1.rebuild_ok && e1.rebuilds_completed >= 2);
  report::check("the storm kept running degraded through the double outage",
                e1.degraded_reads + e1.degraded_writes > 0);
  report::check("rs storm is bit-deterministic",
                e1.fingerprint == e2.fingerprint &&
                    e1.finished_at == e2.finished_at &&
                    e1.events_executed == e2.events_executed);

  if (fleet) {
    std::printf("\n");
    report::banner("fleet-storm",
                   "PACEMAKER controller under crashes + rack outages",
                   "9 servers in 3 age cohorts; AFR-derived crashes, latent "
                   "sector errors and whole-domain outages; budgeted "
                   "rs(4,2)<->rs(6,3) transitions");
    {
      raid::RigParams rp;
      rp.scheme = raid::Scheme::rs(4, 2);
      rp.nservers = 9;
      raid::Rig probe(rp);
      fleet::FleetModel model(probe, fleet_storm_params());
      report::table("disk groups at t=0 (2 fleet-years simulated)",
                    fleet::fleet_groups_table(model, 0.0));
      std::printf("\n");
    }
    const FleetOutcome f1 = run_fleet_storm();
    const FleetOutcome f2 = run_fleet_storm();
    perf_events += f1.events + f2.events;
    perf_sim_seconds += f1.sim_seconds + f2.sim_seconds;
    TextTable ft({"run", "completed", "failed", "shed", "transitions",
                  "urgent", "migs done", "budget MiB", "crashes", "rack out",
                  "media"});
    for (const auto* o : {&f1, &f2}) {
      ft.add_row({o == &f1 ? "A" : "B", std::to_string(o->ol.completed),
                  std::to_string(o->ol.failed), std::to_string(o->ol.shed),
                  std::to_string(o->fs.transitions_requested),
                  std::to_string(o->fs.urgent_requested),
                  std::to_string(o->migs_completed),
                  TextTable::num(static_cast<double>(o->budget_bytes) /
                                     static_cast<double>(MiB),
                                 1),
                  std::to_string(o->faults.crashes),
                  std::to_string(o->faults.group_crashes),
                  std::to_string(o->faults.media_planted)});
    }
    report::table("same AFR-derived storm, run twice", ft);
    report::check("the derived plan exercised every fault class "
                  "(crash, rack outage, latent sector error)",
                  f1.faults.crashes > 0 && f1.faults.group_crashes > 0 &&
                      f1.faults.media_planted > 0);
    report::check("the controller transitioned schemes through the outages",
                  f1.fs.urgent_requested > 0 && f1.migs_completed > 0);
    report::check("every tenant file's rgroup persisted at the manager",
                  f1.fs.rgroup_persists >= 16);
    report::check("transition copies drew from the shared budget",
                  f1.budget_bytes > 0);
    report::check("fleet storm is bit-deterministic",
                  f1.ol.fingerprint == f2.ol.fingerprint &&
                      f1.events == f2.events &&
                      f1.fs.transitions_requested ==
                          f2.fs.transitions_requested);
  }

  if (!trace_path.empty() || !metrics_path.empty()) {
    std::printf("\n");
    report::banner("storm-trace", "Same hybrid storm, observability attached",
                   "spans: rpc/net/server/lock/disk; instants: faults, "
                   "rebuild phases");
    traced_run(trace_path, metrics_path);
  }

  if (perf) {
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - perf_t0)
                            .count();
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    std::printf("\n");
    report::banner("storm-perf", "Simulator throughput over all storm runs",
                   "wall clock, host-dependent: not part of the "
                   "determinism contract");
    std::printf("  events executed      : %llu\n",
                static_cast<unsigned long long>(perf_events));
    std::printf("  wall seconds         : %.3f\n", wall);
    std::printf("  events/sec           : %.3e\n",
                wall > 0 ? perf_events / wall : 0.0);
    std::printf("  wall per simulated s : %.4f\n",
                perf_sim_seconds > 0 ? wall / perf_sim_seconds : 0.0);
    std::printf("  peak RSS             : %.1f MiB\n",
                ru.ru_maxrss / 1024.0);
  }
  return report::exit_code();
}
