// storage_planner: "which redundancy scheme and stripe unit should my
// workload use?" — the practical question the paper's evaluation answers
// case by case, automated.
//
// Describe a workload (total volume, clients, small-request fraction), and
// the planner replays a synthesized trace of it against every scheme and a
// sweep of stripe units, then reports write bandwidth, storage footprint
// and fault tolerance side by side.
//
//   usage: storage_planner [total_MB] [clients] [small_fraction]
//   e.g.:  storage_planner 128 8 0.4
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "raid/rig.hpp"
#include "workloads/harness.hpp"
#include "workloads/trace.hpp"

using namespace csar;

namespace {

struct Cell {
  double write_mbps = 0;
  double storage_ratio = 0;  // stored bytes / logical bytes
};

Cell evaluate(raid::Scheme scheme, std::uint32_t su, const wl::Trace& trace,
              std::uint32_t nclients) {
  raid::RigParams params;
  params.nservers = 6;
  params.nclients = nclients;
  params.scheme = scheme;
  raid::Rig rig(params);
  const auto res = wl::run_on(rig, wl::replay(rig, trace, su));
  pvfs::StorageInfo sum;
  for (std::uint32_t s = 0; s < params.nservers; ++s) {
    const auto info = rig.server(s).total_storage();
    sum.data_bytes += info.data_bytes;
    sum.red_bytes += info.red_bytes;
    sum.overflow_bytes += info.overflow_bytes;
  }
  Cell c;
  c.write_mbps = res.write_bw() / 1e6;
  c.storage_ratio =
      static_cast<double>(sum.data_bytes + sum.red_bytes +
                          sum.overflow_bytes) /
      static_cast<double>(trace.extent());
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t total_mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                          : 64;
  const std::uint32_t clients =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 4;
  const double small_fraction = argc > 3 ? std::strtod(argv[3], nullptr)
                                         : 0.4;
  std::printf("workload: %llu MB over %u clients, %.0f%% small requests\n\n",
              static_cast<unsigned long long>(total_mb), clients,
              small_fraction * 100);

  const wl::Trace trace = wl::synthesize_flash_trace(
      clients, total_mb * MB, small_fraction, /*seed=*/42);
  std::printf("synthesized trace: %zu requests, %.0f%% below 2 KiB, "
              "%s written\n\n",
              trace.size(), trace.fraction_below(2048) * 100,
              format_bytes(trace.bytes_written()).c_str());

  const std::vector<raid::Scheme> schemes = {
      raid::Scheme::raid0, raid::Scheme::raid1, raid::Scheme::raid5,
      raid::Scheme::hybrid};
  const std::vector<std::uint32_t> sus = {16 * KiB, 64 * KiB};

  TextTable t({"scheme", "su", "write MB/s", "storage x",
               "survives a disk failure"});
  std::map<std::pair<raid::Scheme, std::uint32_t>, Cell> cells;
  for (raid::Scheme s : schemes) {
    for (std::uint32_t su : sus) {
      const Cell c = evaluate(s, su, trace, clients);
      cells[{s, su}] = c;
      t.add_row({raid::scheme_name(s), format_bytes(su),
                 TextTable::num(c.write_mbps, 1),
                 TextTable::num(c.storage_ratio, 2),
                 s == raid::Scheme::raid0 ? "NO" : "yes"});
    }
  }
  t.print();

  // Recommendation: fastest fault-tolerant option; note the storage cost.
  raid::Scheme best_scheme = raid::Scheme::raid1;
  std::uint32_t best_su = sus.front();
  double best_bw = 0;
  for (raid::Scheme s : schemes) {
    if (s == raid::Scheme::raid0) continue;
    for (std::uint32_t su : sus) {
      if (cells[{s, su}].write_mbps > best_bw) {
        best_bw = cells[{s, su}].write_mbps;
        best_scheme = s;
        best_su = su;
      }
    }
  }
  std::printf(
      "\nrecommendation: %s with a %s stripe unit (%.1f MB/s, %.2fx "
      "storage).\n",
      raid::scheme_name(best_scheme), format_bytes(best_su).c_str(), best_bw,
      cells[{best_scheme, best_su}].storage_ratio);
  if (best_scheme == raid::Scheme::hybrid &&
      cells[{best_scheme, best_su}].storage_ratio > 2.0) {
    std::printf(
        "note: overflow fragmentation pushes storage above RAID1's 2.0x; "
        "schedule the background cleaner (CsarFs::compact) or use a smaller "
        "stripe unit (see §6.7 of the paper).\n");
  }
  return 0;
}
