#!/usr/bin/env python3
"""CI perf-smoke gate for the DES hot path.

Compares a fresh `bench_sim_scale --quick` run against the committed
perf-trajectory baseline (BENCH_sim_throughput.json) and fails if
events/sec regressed by more than the allowed fraction.

The quick config (8 servers x 64 tenants) is not part of the committed
full sweep, so the baseline is the committed row with the same tenant
count (16 x 64): per-event cost is dominated by tenant coroutines and
queue depth, so the two configs track each other closely while the
quick config stays cheap enough for a CI runner.

Every malformed input fails with a one-line FAIL message, never a
traceback: a missing or truncated baseline is a repo bug CI should
report crisply, not a Python stack to dig through.

Usage:
  check_perf_smoke.py <quick.json> <committed_baseline.json> [max_regress]
      CI gate mode (exit 1 on regression or malformed input).
  check_perf_smoke.py --append-trajectory <full.json> <baseline.json> <label>
      Record a PR's fresh `bench_sim_scale --out=full.json` sweep as one
      trajectory point in the baseline's "trajectory" history (the "rows"
      the CI gate compares against are left untouched).
"""
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def load_json(path, what):
    """Parse `path` or exit with a clear one-line message."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        fail(f"{what} {path} is missing")
    except IsADirectoryError:
        fail(f"{what} {path} is a directory, not a JSON file")
    except json.JSONDecodeError as e:
        fail(f"{what} {path} is not valid JSON ({e})")


def checked_rows(doc, path, what):
    """The document's "rows", validated just enough to use downstream."""
    if not isinstance(doc, dict) or not isinstance(doc.get("rows"), list):
        fail(f'{what} {path} is malformed: expected an object with a '
             f'"rows" list')
    rows = doc["rows"]
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not all(
                isinstance(row.get(k), (int, float))
                for k in ("servers", "tenants", "events_per_sec")):
            fail(f"{what} {path} is malformed: rows[{i}] lacks numeric "
                 f"servers/tenants/events_per_sec")
    return rows


def dump_baseline(doc):
    """Serialize in the bench's own style: one compact row per line."""
    out = ["{"]
    items = list(doc.items())
    for i, (key, value) in enumerate(items):
        comma = "," if i + 1 < len(items) else ""
        if isinstance(value, list):
            out.append(f'  "{key}": [')
            for j, row in enumerate(value):
                out.append("    " + json.dumps(row) +
                           ("," if j + 1 < len(value) else ""))
            out.append("  ]" + comma)
        else:
            out.append(f'  "{key}": {json.dumps(value)}{comma}')
    out.append("}")
    return "\n".join(out) + "\n"


def append_trajectory(full_path, base_path, label):
    full = load_json(full_path, "fresh full-sweep run")
    base = load_json(base_path, "committed baseline")
    rows = checked_rows(full, full_path, "fresh full-sweep run")
    checked_rows(base, base_path, "committed baseline")
    point = {
        "label": label,
        "events_per_sec": {
            f"{r['servers']}x{r['tenants']}": r["events_per_sec"]
            for r in rows
        },
    }
    base.setdefault("trajectory", []).append(point)
    with open(base_path, "w") as f:
        f.write(dump_baseline(base))
    print(f"trajectory: appended '{label}' "
          f"({len(point['events_per_sec'])} configs) to {base_path}")
    return 0


def gate(quick_path, base_path, max_regress):
    quick = load_json(quick_path, "quick run")
    base = load_json(base_path, "committed baseline")
    quick_rows = checked_rows(quick, quick_path, "quick run")
    base_rows = checked_rows(base, base_path, "committed baseline")

    if quick.get("mode") != "quick" or len(quick_rows) != 1:
        fail(f"{quick_path} is not a --quick run")
    row = quick_rows[0]

    tenants = row["tenants"]
    ref_rows = [r for r in base_rows if r["tenants"] == tenants]
    if not ref_rows:
        fail(f"no baseline row with tenants={tenants} in {base_path}")
    ref = ref_rows[0]

    got = row["events_per_sec"]
    want = ref["events_per_sec"]
    floor = want * (1.0 - max_regress)
    verdict = "ok" if got >= floor else "REGRESSION"
    print(f"perf-smoke: quick {row['servers']}x{tenants} = {got:.3e} ev/s; "
          f"baseline {ref['servers']}x{tenants} = {want:.3e} ev/s; "
          f"floor (-{max_regress:.0%}) = {floor:.3e} [{verdict}]")
    return 0 if got >= floor else 1


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--append-trajectory":
        if len(sys.argv) != 5:
            print(__doc__)
            return 2
        return append_trajectory(sys.argv[2], sys.argv[3], sys.argv[4])
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    try:
        max_regress = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20
    except ValueError:
        fail(f"max_regress must be a number, got {sys.argv[3]!r}")
    return gate(sys.argv[1], sys.argv[2], max_regress)


if __name__ == "__main__":
    sys.exit(main())
