#!/usr/bin/env python3
"""CI perf-smoke gate for the DES hot path.

Compares a fresh `bench_sim_scale --quick` run against the committed
perf-trajectory baseline (BENCH_sim_throughput.json) and fails if
events/sec regressed by more than the allowed fraction.

The quick config (8 servers x 64 tenants) is not part of the committed
full sweep, so the baseline is the committed row with the same tenant
count (16 x 64): per-event cost is dominated by tenant coroutines and
queue depth, so the two configs track each other closely while the
quick config stays cheap enough for a CI runner.

Usage: check_perf_smoke.py <quick.json> <committed_baseline.json> [max_regress]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    quick_path, base_path = sys.argv[1], sys.argv[2]
    max_regress = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20

    with open(quick_path) as f:
        quick = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    if quick.get("mode") != "quick" or len(quick["rows"]) != 1:
        print(f"FAIL: {quick_path} is not a --quick run")
        return 1
    row = quick["rows"][0]

    tenants = row["tenants"]
    ref_rows = [r for r in base["rows"] if r["tenants"] == tenants]
    if not ref_rows:
        print(f"FAIL: no baseline row with tenants={tenants} in {base_path}")
        return 1
    ref = ref_rows[0]

    got = row["events_per_sec"]
    want = ref["events_per_sec"]
    floor = want * (1.0 - max_regress)
    verdict = "ok" if got >= floor else "REGRESSION"
    print(f"perf-smoke: quick {row['servers']}x{tenants} = {got:.3e} ev/s; "
          f"baseline {ref['servers']}x{tenants} = {want:.3e} ev/s; "
          f"floor (-{max_regress:.0%}) = {floor:.3e} [{verdict}]")
    return 0 if got >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
