#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace csar {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.15);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(21);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace csar
