#include "common/units.hpp"

#include <gtest/gtest.h>

namespace csar {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(MB, 1000000u);
}

TEST(Units, DivCeil) {
  EXPECT_EQ(div_ceil(0, 4), 0u);
  EXPECT_EQ(div_ceil(1, 4), 1u);
  EXPECT_EQ(div_ceil(4, 4), 1u);
  EXPECT_EQ(div_ceil(5, 4), 2u);
  EXPECT_EQ(div_ceil(8, 4), 2u);
}

TEST(Units, AlignDown) {
  EXPECT_EQ(align_down(0, 16), 0u);
  EXPECT_EQ(align_down(15, 16), 0u);
  EXPECT_EQ(align_down(16, 16), 16u);
  EXPECT_EQ(align_down(17, 16), 16u);
}

TEST(Units, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 16), 32u);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(3 * MiB), "3.00 MiB");
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(87.3e6), "87.3 MB/s");
}

// Property sweep: align_down <= x <= align_up, both multiples of align.
class AlignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignProperty, Invariants) {
  const std::uint64_t align = GetParam();
  for (std::uint64_t x : {0ULL, 1ULL, 7ULL, 63ULL, 64ULL, 65ULL, 1000ULL,
                          123456789ULL}) {
    EXPECT_LE(align_down(x, align), x);
    EXPECT_GE(align_up(x, align), x);
    EXPECT_EQ(align_down(x, align) % align, 0u);
    EXPECT_EQ(align_up(x, align) % align, 0u);
    EXPECT_LT(x - align_down(x, align), align);
    EXPECT_LT(align_up(x, align) - x, align);
  }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignProperty,
                         ::testing::Values(1, 2, 16, 64, 512, 4096, 65536));

}  // namespace
}  // namespace csar
