#include "localfs/local_fs.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hw/disk.hpp"
#include "hw/page_cache.hpp"
#include "sim/simulation.hpp"

namespace csar::localfs {
namespace {

struct Fixture {
  sim::Simulation sim;
  hw::Disk disk;
  sim::BandwidthServer mem;
  hw::PageCache cache;
  LocalFs fs;

  explicit Fixture(LocalFsParams p = {}, std::uint64_t cache_bytes = 8 << 20)
      : disk(sim, disk_params()),
        mem(sim, 1e12),
        cache(sim, disk, mem, cache_params(cache_bytes)),
        fs(sim, cache, p) {}

  static hw::DiskParams disk_params() {
    hw::DiskParams d;
    d.bytes_per_sec = 50e6;
    d.seek = sim::ms(8);
    d.per_op = 0;
    return d;
  }
  static hw::CacheParams cache_params(std::uint64_t bytes) {
    hw::CacheParams c;
    c.capacity_bytes = bytes;
    c.page_size = 4096;
    return c;
  }

  void run(sim::Task<void> t) {
    bool done = false;
    sim.spawn([](sim::Task<void> task, bool* d) -> sim::Task<void> {
      co_await std::move(task);
      *d = true;
    }(std::move(t), &done));
    sim.run();
    ASSERT_TRUE(done);
  }
};

TEST(LocalFs, WriteReadRoundTrip) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    Buffer data = Buffer::pattern(10000, 1);
    co_await fs.write("a", 0, data.slice(0, 10000));
    Buffer got = co_await fs.read("a", 0, 10000);
    EXPECT_EQ(got, data);
  }(f.fs));
}

TEST(LocalFs, HolesReadAsZeros) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    co_await fs.write("a", 8192, Buffer::pattern(100, 2));
    Buffer got = co_await fs.read("a", 0, 100);
    EXPECT_EQ(got, Buffer::real(100));  // zeros
  }(f.fs));
}

TEST(LocalFs, AbsentFileReadsZeros) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    Buffer got = co_await fs.read("nope", 0, 64);
    EXPECT_EQ(got, Buffer::real(64));
  }(f.fs));
}

TEST(LocalFs, OverwriteLatestWins) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    co_await fs.write("a", 0, Buffer::pattern(1000, 1));
    Buffer newer = Buffer::pattern(400, 2);
    co_await fs.write("a", 300, newer.slice(0, 400));
    Buffer got = co_await fs.read("a", 300, 400);
    EXPECT_EQ(got, newer);
    // Edges keep old content.
    Buffer head = co_await fs.read("a", 0, 300);
    EXPECT_EQ(head, Buffer::pattern(1000, 1).slice(0, 300));
  }(f.fs));
}

TEST(LocalFs, SizeTracksUpperBound) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    EXPECT_EQ(fs.size("a"), 0u);
    co_await fs.write("a", 1000, Buffer::pattern(500, 1));
    EXPECT_EQ(fs.size("a"), 1500u);
    co_await fs.write("a", 100, Buffer::pattern(50, 2));
    EXPECT_EQ(fs.size("a"), 1500u);
  }(f.fs));
}

TEST(LocalFs, StreamWithoutBufferingPrereadsOnOverwrite) {
  // §5.2: overwriting an uncached preexisting file with chunk-granular
  // writes forces nearly one pre-read per block.
  LocalFsParams p;
  p.write_buffering = false;
  Fixture f(p);
  f.run([](Fixture& fx) -> sim::Task<void> {
    const std::uint64_t len = 64 * 4096;
    co_await fx.fs.write_stream("a", 0, Buffer::pattern(len, 1), 8800);
    const auto fresh_prereads = fx.cache.stats().prereads;
    EXPECT_EQ(fresh_prereads, 0u);  // new file: nothing to pre-read
    co_await fx.fs.flush();
    fx.fs.drop_caches();
    co_await fx.fs.write_stream("a", 0, Buffer::pattern(len, 2), 8800);
    // Unaligned 8800-byte chunks straddle a 4K block boundary roughly once
    // per chunk: ~64*4096/8800 = 29 pre-reads for this request.
    EXPECT_GT(fx.cache.stats().prereads, 20u);
  }(f));
}

TEST(LocalFs, StreamWithBufferingAvoidsInteriorPrereads) {
  LocalFsParams p;
  p.write_buffering = true;
  p.write_buffer_bytes = 64 * 1024;
  Fixture f(p);
  f.run([](Fixture& fx) -> sim::Task<void> {
    const std::uint64_t len = 64 * 4096;
    co_await fx.fs.write_stream("a", 0, Buffer::pattern(len, 1), 8800);
    co_await fx.fs.flush();
    fx.fs.drop_caches();
    co_await fx.fs.write_stream("a", 0, Buffer::pattern(len, 2), 8800);
    // Aligned request: buffering eliminates every pre-read.
    EXPECT_EQ(fx.cache.stats().prereads, 0u);
  }(f));
}

TEST(LocalFs, BufferedUnalignedRequestPrereadsOnlyEdges) {
  LocalFsParams p;
  p.write_buffering = true;
  Fixture f(p);
  f.run([](Fixture& fx) -> sim::Task<void> {
    const std::uint64_t len = 64 * 4096;
    co_await fx.fs.write_stream("a", 0, Buffer::pattern(len, 1), 8800);
    co_await fx.fs.flush();
    fx.fs.drop_caches();
    // Unaligned overwrite: only the first and last blocks are partial.
    co_await fx.fs.write_stream("a", 100, Buffer::pattern(len - 4096, 2),
                                8800);
    EXPECT_LE(fx.cache.stats().prereads, 2u);
    EXPECT_GT(fx.cache.stats().prereads, 0u);
  }(f));
}

TEST(LocalFs, PadPartialBlocksSuppressesAllPrereads) {
  LocalFsParams p;
  p.write_buffering = true;
  p.pad_partial_blocks = true;
  Fixture f(p);
  f.run([](Fixture& fx) -> sim::Task<void> {
    const std::uint64_t len = 64 * 4096;
    co_await fx.fs.write_stream("a", 0, Buffer::pattern(len, 1), 8800);
    co_await fx.fs.flush();
    fx.fs.drop_caches();
    co_await fx.fs.write_stream("a", 100, Buffer::pattern(len - 4096, 2),
                                8800);
    EXPECT_EQ(fx.cache.stats().prereads, 0u);
  }(f));
}

TEST(LocalFs, StreamContentIdenticalWithAndWithoutBuffering) {
  // Buffering changes timing, never content.
  for (bool buffering : {false, true}) {
    LocalFsParams p;
    p.write_buffering = buffering;
    Fixture f(p);
    f.run([](LocalFs& fs) -> sim::Task<void> {
      Buffer data = Buffer::pattern(100000, 7);
      co_await fs.write_stream("a", 1234, data.slice(0, 100000), 8800);
      Buffer got = co_await fs.read("a", 1234, 100000);
      EXPECT_EQ(got, data);
    }(f.fs));
  }
}

TEST(LocalFs, WipeRemovesEverything) {
  Fixture f;
  f.run([](Fixture& fx) -> sim::Task<void> {
    co_await fx.fs.write("a", 0, Buffer::pattern(1000, 1));
    co_await fx.fs.write("b", 0, Buffer::pattern(1000, 2));
    fx.fs.wipe();
    EXPECT_FALSE(fx.fs.exists("a"));
    EXPECT_EQ(fx.fs.total_content_bytes(), 0u);
    Buffer got = co_await fx.fs.read("a", 0, 100);
    EXPECT_EQ(got, Buffer::real(100));
  }(f));
}

TEST(LocalFs, TotalContentBytes) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    co_await fs.write("a", 0, Buffer::pattern(1000, 1));
    co_await fs.write("b", 500, Buffer::pattern(1000, 2));
    EXPECT_EQ(fs.total_content_bytes(), 1000u + 1500u);
  }(f.fs));
}

TEST(LocalFs, PhantomWritesTrackSizesOnly) {
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    co_await fs.write("a", 0, Buffer::phantom(1 << 20));
    EXPECT_EQ(fs.size("a"), 1u << 20);
    Buffer got = co_await fs.read("a", 0, 4096);
    EXPECT_FALSE(got.materialized());
    EXPECT_EQ(got.size(), 4096u);
  }(f.fs));
}

TEST(LocalFs, RandomizedContentProperty) {
  // Arbitrary interleavings of write/write_stream must equal a flat
  // reference model byte-for-byte.
  Fixture f;
  f.run([](LocalFs& fs) -> sim::Task<void> {
    Rng rng(2003);
    constexpr std::uint64_t kSpan = 200000;
    std::vector<std::byte> ref(kSpan, std::byte{0});
    for (int i = 0; i < 60; ++i) {
      const std::uint64_t off = rng.below(kSpan - 1);
      const std::uint64_t len = 1 + rng.below(std::min<std::uint64_t>(
                                        kSpan - off - 1, 30000));
      Buffer data = Buffer::pattern(len, rng.next());
      auto src = data.bytes();
      std::copy(src.begin(), src.end(),
                ref.begin() + static_cast<std::ptrdiff_t>(off));
      if (rng.chance(0.5)) {
        co_await fs.write("f", off, std::move(data));
      } else {
        co_await fs.write_stream("f", off, std::move(data), 8800);
      }
    }
    Buffer got = co_await fs.read("f", 0, kSpan);
    Buffer expect = Buffer::from_bytes(std::move(ref));
    EXPECT_EQ(got, expect);
  }(f.fs));
}

}  // namespace
}  // namespace csar::localfs
