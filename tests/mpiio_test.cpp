// The MPI-IO collective layer: two-phase writes/reads, aggregator
// partitioning, and the merging behaviour the paper relies on ("ROMIO
// optimizes small, non-contiguous accesses by merging them", §6.5).
#include "mpiio/collective.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"
#include "workloads/harness.hpp"

namespace csar::mpiio {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;
using raid::Rig;
using raid::RigParams;
using raid::Scheme;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme, std::uint32_t nclients) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 5;
  p.nclients = nclients;
  return p;
}

/// Run one collective op across all ranks and wait for completion.
template <typename Fn>
void all_ranks(Rig& rig, std::uint32_t nprocs, Fn&& fn) {
  bool done = false;
  rig.sim.spawn([](Rig& r, std::uint32_t np, Fn f, bool* d) -> sim::Task<void> {
    sim::WaitGroup wg(r.sim);
    wg.add(np);
    for (std::uint32_t rank = 0; rank < np; ++rank) {
      r.sim.spawn([](sim::Task<void> body, sim::WaitGroup* g) -> sim::Task<void> {
        co_await std::move(body);
        g->done();
      }(f(rank), &wg));
    }
    co_await wg.wait();
    *d = true;
  }(rig, nprocs, std::forward<Fn>(fn), &done));
  rig.sim.run();
  ASSERT_TRUE(done) << "collective deadlocked";
}

TEST(Collective, WriteAtAllRoundTrip) {
  constexpr std::uint32_t kProcs = 4;
  Rig rig(rig_params(Scheme::hybrid, kProcs));
  auto f = csar::test::run_sim(
      rig, rig.client_fs(0).create("f", rig.layout(kSu)));
  ASSERT_TRUE(f.ok());
  CollectiveFile cf(rig, *f, kProcs);
  // Each rank writes 64 KiB at rank*64KiB: one merged 256 KiB region.
  RefFile ref;
  for (std::uint32_t r = 0; r < kProcs; ++r) {
    ref.write(r * 64 * KiB, Buffer::pattern(64 * KiB, r));
  }
  all_ranks(rig, kProcs, [&](std::uint32_t rank) -> sim::Task<void> {
    return [](CollectiveFile& file, std::uint32_t rk) -> sim::Task<void> {
      auto wr = co_await file.write_at_all(rk, rk * 64 * KiB,
                                           Buffer::pattern(64 * KiB, rk));
      EXPECT_TRUE(wr.ok());
    }(cf, rank);
  });
  // Verify through a plain read.
  run_sim_void(rig, [](Rig& r, pvfs::OpenFile file,
                       RefFile* expect) -> sim::Task<void> {
    auto rd = co_await r.client_fs(0).read(file, 0, expect->size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, expect->expect(0, expect->size()));
  }(rig, *f, &ref));
}

TEST(Collective, MergingTurnsSmallRequestsIntoFewLargeWrites) {
  // The §6.5 effect: tiny interleaved rank requests become a handful of
  // cb_buffer-sized aggregator writes with no partial stripes inside.
  constexpr std::uint32_t kProcs = 4;
  Rig rig(rig_params(Scheme::hybrid, kProcs));
  auto f = csar::test::run_sim(
      rig, rig.client_fs(0).create("f", rig.layout(kSu)));
  ASSERT_TRUE(f.ok());
  CollectiveParams cp;
  cp.cb_nodes = 2;
  CollectiveFile cf(rig, *f, kProcs, cp);
  // Rank r writes every 4th 1 KiB record: individually these are sub-block
  // partial-stripe writes; merged they tile [0, 1 MiB) exactly.
  constexpr std::uint64_t kRecord = 1024;
  constexpr std::uint64_t kTotal = 1 * MiB;
  all_ranks(rig, kProcs, [&](std::uint32_t rank) -> sim::Task<void> {
    return [](CollectiveFile& file, std::uint32_t rk) -> sim::Task<void> {
      // Build this rank's strided content as separate collective calls per
      // record region would be slow; MPI datatypes would merge them — here
      // each rank passes one contiguous quarter after a local pack, which
      // is what ROMIO's exchange effectively produces.
      const std::uint64_t quarter = kTotal / 4;
      auto wr = co_await file.write_at_all(
          rk, rk * quarter, Buffer::pattern(quarter, 1000 + rk));
      EXPECT_TRUE(wr.ok());
      (void)kRecord;
    }(cf, rank);
  });
  // The merged region is full stripes: the Hybrid scheme stored *no*
  // overflow at all (every write the servers saw was large and aligned
  // enough to take the parity path except the region edges).
  auto info = csar::test::run_sim(rig, rig.client_fs(0).storage(*f));
  EXPECT_EQ(info.data_bytes, kTotal);
  EXPECT_LE(info.overflow_bytes, 4u * 2 * kSu);  // at most the edges
}

TEST(Collective, ReadAtAllReturnsEachRanksBytes) {
  constexpr std::uint32_t kProcs = 3;
  Rig rig(rig_params(Scheme::raid5, kProcs));
  auto f = csar::test::run_sim(
      rig, rig.client_fs(0).create("f", rig.layout(kSu)));
  ASSERT_TRUE(f.ok());
  Buffer content = Buffer::pattern(96 * KiB, 5);
  run_sim_void(rig, [](Rig& r, pvfs::OpenFile file,
                       const Buffer* data) -> sim::Task<void> {
    auto wr = co_await r.client_fs(0).write(file, 0,
                                            data->slice(0, data->size()));
    CO_ASSERT_TRUE(wr.ok());
  }(rig, *f, &content));
  CollectiveFile cf(rig, *f, kProcs);
  all_ranks(rig, kProcs, [&](std::uint32_t rank) -> sim::Task<void> {
    return [](CollectiveFile& file, std::uint32_t rk,
              const Buffer* data) -> sim::Task<void> {
      auto rd = co_await file.read_at_all(rk, rk * 32 * KiB, 32 * KiB);
      EXPECT_TRUE(rd.ok());
      if (rd.ok()) {
        EXPECT_EQ(*rd, data->slice(rk * 32 * KiB, 32 * KiB)) << "rank " << rk;
      }
    }(cf, rank, &content);
  });
}

TEST(Collective, EmptyParticipantsAreFine) {
  constexpr std::uint32_t kProcs = 3;
  Rig rig(rig_params(Scheme::raid0, kProcs));
  auto f = csar::test::run_sim(
      rig, rig.client_fs(0).create("f", rig.layout(kSu)));
  ASSERT_TRUE(f.ok());
  CollectiveFile cf(rig, *f, kProcs);
  all_ranks(rig, kProcs, [&](std::uint32_t rank) -> sim::Task<void> {
    return [](CollectiveFile& file, std::uint32_t rk) -> sim::Task<void> {
      // Only rank 1 contributes data; the others pass empty requests.
      Buffer data = rk == 1 ? Buffer::pattern(64 * KiB, 9) : Buffer::real(0);
      auto wr = co_await file.write_at_all(rk, 0, std::move(data));
      EXPECT_TRUE(wr.ok());
    }(cf, rank);
  });
  run_sim_void(rig, [](Rig& r, pvfs::OpenFile file) -> sim::Task<void> {
    auto rd = co_await r.client_fs(0).read(file, 0, 64 * KiB);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, Buffer::pattern(64 * KiB, 9));
  }(rig, *f));
}

TEST(Collective, SuccessiveCollectivesReuseState) {
  constexpr std::uint32_t kProcs = 2;
  Rig rig(rig_params(Scheme::hybrid, kProcs));
  auto f = csar::test::run_sim(
      rig, rig.client_fs(0).create("f", rig.layout(kSu)));
  ASSERT_TRUE(f.ok());
  CollectiveFile cf(rig, *f, kProcs);
  RefFile ref;
  for (int round = 0; round < 3; ++round) {
    ref.write(round * 128 * KiB, Buffer::pattern(64 * KiB, 10 + round));
    ref.write(round * 128 * KiB + 64 * KiB,
              Buffer::pattern(64 * KiB, 20 + round));
  }
  all_ranks(rig, kProcs, [&](std::uint32_t rank) -> sim::Task<void> {
    return [](CollectiveFile& file, std::uint32_t rk) -> sim::Task<void> {
      for (int round = 0; round < 3; ++round) {
        const std::uint64_t off = static_cast<std::uint64_t>(round) * 128 *
                                      KiB +
                                  rk * 64 * KiB;
        auto wr = co_await file.write_at_all(
            rk, off,
            Buffer::pattern(64 * KiB, (rk == 0 ? 10 : 20) + round));
        EXPECT_TRUE(wr.ok());
        co_await file.barrier(rk);
      }
    }(cf, rank);
  });
  run_sim_void(rig, [](Rig& r, pvfs::OpenFile file,
                       RefFile* expect) -> sim::Task<void> {
    auto rd = co_await r.client_fs(0).read(file, 0, expect->size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, expect->expect(0, expect->size()));
  }(rig, *f, &ref));
}

TEST(Collective, AggregatorCountCapped) {
  constexpr std::uint32_t kProcs = 3;
  Rig rig(rig_params(Scheme::raid0, kProcs));
  auto f = csar::test::run_sim(
      rig, rig.client_fs(0).create("f", rig.layout(kSu)));
  ASSERT_TRUE(f.ok());
  CollectiveParams cp;
  cp.cb_nodes = 64;  // more than ranks: clamped
  CollectiveFile cf(rig, *f, kProcs, cp);
  EXPECT_EQ(cf.cb_nodes(), kProcs);
}

}  // namespace
}  // namespace csar::mpiio
