#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace csar::sim {
namespace {

TEST(Mutex, UncontendedAcquireIsImmediate) {
  Simulation sim;
  Mutex m(sim);
  Time t = 0;
  sim.spawn([](Simulation& s, Mutex& mu, Time& at) -> Task<void> {
    co_await mu.lock();
    at = s.now();
    mu.unlock();
  }(sim, m, t));
  sim.run();
  EXPECT_EQ(t, 0u);
  EXPECT_FALSE(m.held());
}

TEST(Mutex, SerializesCriticalSections) {
  Simulation sim;
  Mutex m(sim);
  std::vector<std::pair<int, Time>> entries;
  auto proc = [](Simulation& s, Mutex& mu,
                 std::vector<std::pair<int, Time>>& e, int id) -> Task<void> {
    co_await mu.lock();
    e.emplace_back(id, s.now());
    co_await s.sleep(ms(10));
    mu.unlock();
  };
  for (int i = 0; i < 3; ++i) sim.spawn(proc(sim, m, entries, i));
  sim.run();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].second, 0u);
  EXPECT_EQ(entries[1].second, ms(10));  // FIFO, back-to-back
  EXPECT_EQ(entries[2].second, ms(20));
  EXPECT_EQ(entries[0].first, 0);
  EXPECT_EQ(entries[1].first, 1);
  EXPECT_EQ(entries[2].first, 2);
}

TEST(Mutex, ScopedGuardUnlocks) {
  Simulation sim;
  Mutex m(sim);
  sim.spawn([](Simulation& s, Mutex& mu) -> Task<void> {
    {
      auto g = co_await mu.scoped();
      co_await s.sleep(ms(1));
    }
    EXPECT_FALSE(mu.held());
  }(sim, m));
  sim.run();
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int active = 0;
  int peak = 0;
  auto proc = [](Simulation& s, Semaphore& sm, int& a, int& p) -> Task<void> {
    co_await sm.acquire();
    ++a;
    p = std::max(p, a);
    co_await s.sleep(ms(5));
    --a;
    sm.release();
  };
  for (int i = 0; i < 6; ++i) sim.spawn(proc(sim, sem, active, peak));
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(sim.now(), ms(15));  // 6 jobs, 2 wide, 5ms each
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Event, ReleasesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  int released = 0;
  auto waiter = [](Event& e, int& r) -> Task<void> {
    co_await e.wait();
    ++r;
  };
  for (int i = 0; i < 4; ++i) sim.spawn(waiter(ev, released));
  sim.spawn([](Simulation& s, Event& e) -> Task<void> {
    co_await s.sleep(ms(2));
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(released, 4);
}

TEST(Event, WaitAfterSetIsImmediate) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  bool done = false;
  sim.spawn([](Event& e, bool& d) -> Task<void> {
    co_await e.wait();
    d = true;
  }(ev, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Barrier, AllPartiesLeaveTogether) {
  Simulation sim;
  constexpr std::size_t kParties = 4;
  Barrier bar(sim, kParties);
  std::vector<Time> leave;
  auto proc = [](Simulation& s, Barrier& b, std::vector<Time>& lv,
                 Duration arrive_delay) -> Task<void> {
    co_await s.sleep(arrive_delay);
    co_await b.arrive_and_wait();
    lv.push_back(s.now());
  };
  for (std::size_t i = 0; i < kParties; ++i) {
    sim.spawn(proc(sim, bar, leave, ms(i + 1)));
  }
  sim.run();
  ASSERT_EQ(leave.size(), kParties);
  for (Time t : leave) EXPECT_EQ(t, ms(kParties));  // last arrival gates
}

TEST(Barrier, Reusable) {
  Simulation sim;
  constexpr std::size_t kParties = 3;
  Barrier bar(sim, kParties);
  int rounds_done = 0;
  auto proc = [](Simulation& s, Barrier& b, int& rd, int id) -> Task<void> {
    for (int round = 0; round < 5; ++round) {
      co_await s.sleep(static_cast<Duration>(id + 1));
      co_await b.arrive_and_wait();
    }
    ++rd;
  };
  for (int i = 0; i < static_cast<int>(kParties); ++i) {
    sim.spawn(proc(sim, bar, rounds_done, i));
  }
  sim.run();
  EXPECT_EQ(rounds_done, 3);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(WaitGroup, WaitsForAll) {
  Simulation sim;
  WaitGroup wg(sim);
  Time done_at = 0;
  wg.add(3);
  auto worker = [](Simulation& s, WaitGroup& w, Duration d) -> Task<void> {
    co_await s.sleep(d);
    w.done();
  };
  sim.spawn(worker(sim, wg, ms(1)));
  sim.spawn(worker(sim, wg, ms(5)));
  sim.spawn(worker(sim, wg, ms(3)));
  sim.spawn([](Simulation& s, WaitGroup& w, Time& t) -> Task<void> {
    co_await w.wait();
    t = s.now();
  }(sim, wg, done_at));
  sim.run();
  EXPECT_EQ(done_at, ms(5));
}

TEST(WaitGroup, WaitOnZeroIsImmediate) {
  Simulation sim;
  WaitGroup wg(sim);
  bool done = false;
  sim.spawn([](WaitGroup& w, bool& d) -> Task<void> {
    co_await w.wait();
    d = true;
  }(wg, done));
  sim.run();
  EXPECT_TRUE(done);
}

TEST(WhenAll, RunsConcurrently) {
  Simulation sim;
  auto worker = [](Simulation& s, Duration d) -> Task<void> {
    co_await s.sleep(d);
  };
  std::vector<Task<void>> tasks;
  tasks.push_back(worker(sim, ms(10)));
  tasks.push_back(worker(sim, ms(20)));
  tasks.push_back(worker(sim, ms(15)));
  Time done_at = 0;
  sim.spawn([](Simulation& s, std::vector<Task<void>> ts,
               Time& t) -> Task<void> {
    co_await when_all(s, std::move(ts));
    t = s.now();
  }(sim, std::move(tasks), done_at));
  sim.run();
  EXPECT_EQ(done_at, ms(20));  // max, not sum: concurrent
}

TEST(WhenAll, EmptyCompletesImmediately) {
  Simulation sim;
  bool done = false;
  sim.spawn([](Simulation& s, bool& d) -> Task<void> {
    co_await when_all(s, {});
    d = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
}

// Classic RAID5 parity-lock shape: ordered lock acquisition avoids deadlock.
TEST(Mutex, OrderedAcquisitionOfTwoLocks) {
  Simulation sim;
  Mutex a(sim);
  Mutex b(sim);
  int completed = 0;
  // Both processes take locks in the same (address-independent) order; with
  // FIFO mutexes this cannot deadlock.
  auto proc = [](Simulation& s, Mutex& first, Mutex& second,
                 int& c) -> Task<void> {
    co_await first.lock();
    co_await s.sleep(ms(1));
    co_await second.lock();
    co_await s.sleep(ms(1));
    second.unlock();
    first.unlock();
    ++c;
  };
  sim.spawn(proc(sim, a, b, completed));
  sim.spawn(proc(sim, a, b, completed));
  sim.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(sim.live_processes(), 0u);
}

}  // namespace
}  // namespace csar::sim
