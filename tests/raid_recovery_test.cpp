// Failure tolerance: degraded reads and full server rebuild for every
// redundancy scheme, including the Hybrid overflow-overlay reconstruction
// that motivates the scheme's no-in-place-update rule (§4).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pvfs/io_server.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme, std::uint32_t nservers = 5) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = nservers;
  return p;
}

/// Write a randomized workload, fail each server in turn, and verify
/// degraded reads return exactly the reference content.
void degraded_read_roundtrip(Scheme scheme, std::uint64_t seed) {
  Rig rig(rig_params(scheme));
  run_sim_void(rig, [](Rig& r, std::uint64_t sd) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(sd);
    for (int i = 0; i < 30; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    Recovery rec = r.recovery();
    for (std::uint32_t victim = 0; victim < r.p.nservers; ++victim) {
      r.server(victim).fail();
      auto rd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size()))
          << "degraded read with server " << victim << " down";
      r.server(victim).recover();
    }
  }(rig, seed));
}

TEST(DegradedRead, Raid1) { degraded_read_roundtrip(Scheme::raid1, 11); }
TEST(DegradedRead, Raid5) { degraded_read_roundtrip(Scheme::raid5, 12); }
TEST(DegradedRead, Hybrid) { degraded_read_roundtrip(Scheme::hybrid, 13); }

TEST(DegradedRead, Raid0CannotReconstruct) {
  Rig rig(rig_params(Scheme::raid0));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(10 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    r.server(0).fail();
    Recovery rec = r.recovery();
    auto rd = co_await rec.degraded_read(*f, 0, 10 * kSu, 0);
    EXPECT_FALSE(rd.ok());
    EXPECT_EQ(rd.error().code, Errc::server_failed);
  }(rig));
}

TEST(DegradedRead, NormalReadFailsWhileServerDown) {
  Rig rig(rig_params(Scheme::raid5));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(10 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    r.server(2).fail();
    auto rd = co_await fs.read(*f, 0, 10 * kSu);
    EXPECT_FALSE(rd.ok());
  }(rig));
}

TEST(DegradedRead, HybridServesNewestOverflowFromMirror) {
  // The crucial CSAR property: after a partial-stripe write, the *newest*
  // data for a failed server exists only in its successor's mirror overflow;
  // parity alone reconstructs the stale base.
  Rig rig(rig_params(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    Buffer base = Buffer::pattern(w, 1);
    auto w1 = co_await fs.write(*f, 0, base.slice(0, w));  // full stripe
    CO_ASSERT_TRUE(w1.ok());
    Buffer patch = Buffer::pattern(1000, 2);
    auto w2 = co_await fs.write(*f, 100, patch.slice(0, 1000));  // partial
    CO_ASSERT_TRUE(w2.ok());
    // Unit 0 lives on server 0: fail it; the patch covers [100, 1100).
    r.server(0).fail();
    Recovery rec = r.recovery();
    auto rd = co_await rec.degraded_read(*f, 0, w, 0);
    CO_ASSERT_TRUE(rd.ok());
    Buffer expect = base.slice(0, w);
    expect.write_at(100, patch);
    EXPECT_EQ(*rd, expect);
  }(rig));
}


TEST(DegradedRead, NonzeroBaseStillRecovers) {
  // PVFS's `base` attribute shifts every placement; redundancy and
  // reconstruction must be base-agnostic.
  for (Scheme scheme : {Scheme::raid1, Scheme::raid5, Scheme::hybrid}) {
    Rig rig(rig_params(scheme));
    run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
      pvfs::StripeLayout layout = r.layout(kSu);
      layout.base = 3;
      auto f = co_await r.client_fs().create("based", layout);
      CO_ASSERT_TRUE(f.ok());
      const std::uint64_t w = f->layout.stripe_width();
      RefFile ref;
      Rng rng(61);
      for (int i = 0; i < 15; ++i) {
        const std::uint64_t off = rng.below(3 * w);
        const std::uint64_t len = 1 + rng.below(2 * w);
        Buffer data = Buffer::pattern(len, rng.next());
        ref.write(off, data);
        auto wr = co_await r.client_fs().write(*f, off, std::move(data));
        CO_ASSERT_TRUE(wr.ok());
      }
      auto rd = co_await r.client_fs().read(*f, 0, ref.size());
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size()));
      Recovery rec = r.recovery();
      for (std::uint32_t victim = 0; victim < r.p.nservers; ++victim) {
        r.server(victim).fail();
        auto drd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
        CO_ASSERT_TRUE(drd.ok());
        EXPECT_EQ(*drd, ref.expect(0, ref.size()))
            << scheme_name(r.p.scheme) << " victim " << victim;
        r.server(victim).recover();
      }
    }(rig));
  }
}

/// Full rebuild: write, snapshot, fail + wipe a server, rebuild, then verify
/// normal reads, parity/mirror integrity, and a *second* failure of a
/// different server (exercising the rebuilt redundancy).
void rebuild_roundtrip(Scheme scheme, std::uint64_t seed) {
  Rig rig(rig_params(scheme));
  run_sim_void(rig, [](Rig& r, std::uint64_t sd) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(sd);
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    const std::uint32_t victim = 1;
    r.server(victim).fail();
    r.server(victim).wipe();  // disk replaced with a blank one
    r.server(victim).recover();
    Recovery rec = r.recovery();
    auto rb = co_await rec.rebuild_server(*f, victim, ref.size());
    CO_ASSERT_TRUE(rb.ok());

    // Normal reads are correct again.
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));

    // The rebuilt redundancy tolerates a *different* failure.
    const std::uint32_t second = 2;
    r.server(second).fail();
    auto rd2 = co_await rec.degraded_read(*f, 0, ref.size(), second);
    CO_ASSERT_TRUE(rd2.ok());
    EXPECT_EQ(*rd2, ref.expect(0, ref.size()));
    r.server(second).recover();

    // And a failure of the rebuilt server itself.
    r.server(victim).fail();
    auto rd3 = co_await rec.degraded_read(*f, 0, ref.size(), victim);
    CO_ASSERT_TRUE(rd3.ok());
    EXPECT_EQ(*rd3, ref.expect(0, ref.size()));
  }(rig, seed));
}

TEST(Rebuild, Raid1) { rebuild_roundtrip(Scheme::raid1, 21); }
TEST(Rebuild, Raid5) { rebuild_roundtrip(Scheme::raid5, 22); }
TEST(Rebuild, Hybrid) { rebuild_roundtrip(Scheme::hybrid, 23); }

// Property sweep: random write traces with failure injected at a random
// point; degraded reads must match the reference at every failure point.
class RecoveryProperty
    : public ::testing::TestWithParam<std::tuple<Scheme, std::uint32_t>> {};

TEST_P(RecoveryProperty, DegradedReadsMatchReferenceMidTrace) {
  const auto [scheme, nservers] = GetParam();
  Rig rig(rig_params(scheme, nservers));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(1000 + r.p.nservers);
    Recovery rec = r.recovery();
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(3 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
      // Inject a failure after every fourth write.
      if (i % 4 == 3) {
        const auto victim =
            static_cast<std::uint32_t>(rng.below(r.p.nservers));
        r.server(victim).fail();
        auto rd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
        CO_ASSERT_TRUE(rd.ok());
        EXPECT_EQ(*rd, ref.expect(0, ref.size()))
            << "failure after write " << i << ", victim " << victim;
        r.server(victim).recover();
      }
    }
  }(rig));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSizes, RecoveryProperty,
    ::testing::Combine(::testing::Values(Scheme::raid1, Scheme::raid5,
                                         Scheme::hybrid),
                       ::testing::Values(2u, 3u, 5u, 7u)),
    [](const auto& info) {
      std::string name = scheme_name(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace csar::raid
