// Fleet layer: bathtub aging groups, AFR-derived fault plans, and the
// disk-adaptive redundancy controller — class targets, urgency ordering,
// the shared transition budget, and rgroup persistence through a metadata
// manager crash/replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "pvfs/io_server.hpp"
#include "raid/migrate.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::fleet {
namespace {

using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

raid::RigParams fleet_rig_params() {
  raid::RigParams p;
  p.scheme = raid::Scheme::rs(4, 2);
  p.nservers = 9;  // three groups of three; wide enough for rs(6,3)
  return p;
}

/// Ages chosen so the jittered bathtub boundaries cannot straddle a class:
/// group 0 is deep in wearout, group 1 safely mid-life, group 2 in infancy.
FleetParams three_class_params() {
  FleetParams fp;
  fp.group_size = 3;
  fp.group0_age_years = 6.0;
  fp.group_age_step_years = 3.0;
  fp.years_per_sim_sec = 0.01;  // negligible aging over a sub-second run
  fp.lead_years = 0.05;
  fp.decision_interval = sim::ms(10);
  return fp;
}

TEST(FleetLoss, ClosedFormRateAndOrdering) {
  const double afr = 0.05;
  const double repair = 2e-3;
  // rs(4,2) over g=6 disks: 6λ · (5λR)(4λR) = 120 λ³R².
  EXPECT_DOUBLE_EQ(loss_event_rate(raid::Scheme::rs(4, 2), 9, afr, repair),
                   120.0 * afr * afr * afr * repair * repair);
  // rs(6,3) over g=9: 9λ · (8λR)(7λR)(6λR) = 3024 λ⁴R³.
  EXPECT_DOUBLE_EQ(loss_event_rate(raid::Scheme::rs(6, 3), 9, afr, repair),
                   3024.0 * afr * afr * afr * afr * repair * repair * repair);
  // raid0 loses data on any failure: g·λ with no repair term.
  EXPECT_DOUBLE_EQ(loss_event_rate(raid::Scheme::raid0, 9, afr, repair),
                   9.0 * afr);
  // One more tolerated failure buys orders of magnitude when λR << 1.
  const double r0 = loss_event_rate(raid::Scheme::raid0, 9, afr, repair);
  const double r1 = loss_event_rate(raid::Scheme::raid5, 9, afr, repair);
  const double r2 = loss_event_rate(raid::Scheme::rs(4, 2), 9, afr, repair);
  const double r3 = loss_event_rate(raid::Scheme::rs(6, 3), 9, afr, repair);
  EXPECT_GT(r0, r1);
  EXPECT_GT(r1, r2);
  EXPECT_GT(r2, r3);
  EXPECT_GT(r3, 0.0);
}

TEST(FleetModelTest, GroupsAgingAndClassQueries) {
  raid::Rig rig(fleet_rig_params());
  const FleetParams fp = three_class_params();
  FleetModel model(rig, fp);

  ASSERT_EQ(model.nservers(), 9u);
  ASSERT_EQ(model.ngroups(), 3u);
  EXPECT_EQ(model.group_of_server(0), 0u);
  EXPECT_EQ(model.group_of_server(5), 1u);
  EXPECT_EQ(model.group_of_server(8), 2u);
  // Placement bases wrap modulo the server count.
  EXPECT_EQ(model.group_of_base(0), 0u);
  EXPECT_EQ(model.group_of_base(4), 1u);
  EXPECT_EQ(model.group_of_base(9), 0u);
  EXPECT_EQ(model.group_of_base(16), 2u);
  EXPECT_EQ(model.servers_of_group(1),
            (std::vector<std::uint32_t>{3, 4, 5}));

  // Timeline compression: seconds * years_per_sim_sec.
  EXPECT_DOUBLE_EQ(model.added_years(sim::ms(2000)), 0.02);

  // The model pushed each seeded profile onto the rig's server disks.
  for (std::uint32_t s = 0; s < model.nservers(); ++s) {
    const hw::Disk* d = rig.cluster.node(rig.server(s).node_id()).disk();
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->aging().age_years, model.disk(s).age_years) << s;
  }

  // Age cohorts land in their designed classes despite per-disk jitter.
  EXPECT_EQ(model.class_of_group(0, 0.0), hw::AfrClass::wearout);
  EXPECT_EQ(model.class_of_group(1, 0.0), hw::AfrClass::useful_life);
  EXPECT_EQ(model.class_of_group(2, 0.0), hw::AfrClass::infancy);
  // ... and every group ends up in wearout far enough out.
  for (std::uint32_t g = 0; g < model.ngroups(); ++g) {
    EXPECT_EQ(model.class_of_group(g, 10.0), hw::AfrClass::wearout) << g;
  }

  // class_of_group is the worst member's class, afr_of_group the mean, and
  // years_to_class_change the min — all recomputable from disk() directly.
  for (std::uint32_t g = 0; g < model.ngroups(); ++g) {
    double worst = -1.0;
    hw::AfrClass worst_cls = hw::AfrClass::useful_life;
    double sum = 0.0;
    double next = 1e18;
    for (std::uint32_t s : model.servers_of_group(g)) {
      const hw::AgingParams& a = model.disk(s);
      sum += a.afr(0.5);
      if (a.afr(0.5) > worst) {
        worst = a.afr(0.5);
        worst_cls = a.afr_class(0.5);
      }
      next = std::min(next, a.years_to_next_class(0.5));
    }
    EXPECT_EQ(model.class_of_group(g, 0.5), worst_cls) << g;
    EXPECT_DOUBLE_EQ(model.afr_of_group(g, 0.5), sum / 3.0) << g;
    EXPECT_DOUBLE_EQ(model.years_to_class_change(g, 0.5), next) << g;
  }

  // The groups table renders one row per group with the class names.
  const std::string table = fleet_groups_table(model, 0.0).to_string();
  EXPECT_NE(table.find("g0"), std::string::npos);
  EXPECT_NE(table.find("wearout"), std::string::npos);
  EXPECT_NE(table.find("useful"), std::string::npos);
  EXPECT_NE(table.find("infancy"), std::string::npos);
}

TEST(FleetModelTest, FaultPlanDeterministicAndAfrDriven) {
  raid::Rig rig(fleet_rig_params());
  FleetParams fp = three_class_params();
  fp.years_per_sim_sec = 0.5;
  fp.fault_boost = 50.0;
  fp.group_outage_per_year = 5.0;
  FleetModel model(rig, fp);

  const sim::Duration horizon = sim::ms(10000);
  const sim::Duration step = sim::ms(10);
  const fault::FaultPlan a = model.derive_fault_plan(horizon, step, 4);
  const fault::FaultPlan b = model.derive_fault_plan(horizon, step, 4);

  // Bit-deterministic: two derivations agree event-for-event.
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
    EXPECT_EQ(a.crashes[i].server, b.crashes[i].server);
    EXPECT_EQ(a.crashes[i].restart_at, b.crashes[i].restart_at);
    EXPECT_EQ(a.crashes[i].wipe, b.crashes[i].wipe);
  }
  ASSERT_EQ(a.media.size(), b.media.size());
  for (std::size_t i = 0; i < a.media.size(); ++i) {
    EXPECT_EQ(a.media[i].at, b.media[i].at);
    EXPECT_EQ(a.media[i].server, b.media[i].server);
    EXPECT_EQ(a.media[i].file, b.media[i].file);
    EXPECT_EQ(a.media[i].off, b.media[i].off);
  }
  ASSERT_EQ(a.group_crashes.size(), b.group_crashes.size());
  for (std::size_t i = 0; i < a.group_crashes.size(); ++i) {
    EXPECT_EQ(a.group_crashes[i].at, b.group_crashes[i].at);
    EXPECT_EQ(a.group_crashes[i].servers, b.group_crashes[i].servers);
  }

  // Events are well-formed: inside the horizon, on real servers, media
  // faults target tenant handles 1..n, group outages hit whole domains.
  EXPECT_GT(a.crashes.size() + a.media.size(), 0u);
  EXPECT_GT(a.group_crashes.size(), 0u);
  std::vector<std::uint64_t> per_group(3, 0);
  for (const auto& c : a.crashes) {
    EXPECT_GT(c.at, 0u);
    EXPECT_LE(c.at, horizon);
    ASSERT_LT(c.server, 9u);
    EXPECT_EQ(*c.restart_at, c.at + fp.crash_outage);
    EXPECT_FALSE(c.wipe);
    ++per_group[model.group_of_server(c.server)];
  }
  bool media_names_ok = true;
  for (const auto& m : a.media) {
    ASSERT_LT(m.server, 9u);
    EXPECT_EQ(m.len, 4096u);
    ++per_group[model.group_of_server(m.server)];
    bool hit = false;
    for (std::uint32_t h = 1; h <= 4; ++h) {
      if (m.file == pvfs::IoServer::data_name(h)) hit = true;
    }
    media_names_ok = media_names_ok && hit;
  }
  EXPECT_TRUE(media_names_ok);
  for (const auto& g : a.group_crashes) {
    ASSERT_EQ(g.servers.size(), 3u);
    EXPECT_EQ(model.group_of_server(g.servers.front()),
              model.group_of_server(g.servers.back()));
  }
  // AFR-driven: the wearout cohort (group 0, ~0.08/y) draws more events
  // than the mid-life cohort (group 1, ~0.012/y) over a long horizon.
  EXPECT_GT(per_group[0], per_group[1]);

  // No boost, no background outages -> an empty plan.
  FleetParams quiet = fp;
  quiet.fault_boost = 0.0;
  quiet.group_outage_per_year = 0.0;
  FleetModel quiet_model(rig, quiet);
  const fault::FaultPlan none =
      quiet_model.derive_fault_plan(horizon, step, 4);
  EXPECT_TRUE(none.crashes.empty());
  EXPECT_TRUE(none.media.empty());
  EXPECT_TRUE(none.group_crashes.empty());
}

// End-to-end: three files on three age cohorts under rs(4,2). The
// controller upgrades the wearout and infancy cohorts to rs(6,3) through
// the budgeted migrator (urgent, durability up), leaves the mid-life
// cohort alone, persists every file's rgroup at the manager, and the tag
// survives a manager crash + journal replay.
TEST(FleetControllerTest, AdaptiveTransitionsAndRgroupPersistence) {
  raid::Rig rig(fleet_rig_params());
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    FleetParams fp = three_class_params();
    FleetModel model(r, fp);
    raid::SchemeMigrator mig(r);
    mig.start();
    FleetController ctl(r, mig, model, fp);

    // One file per cohort: base picks the primary group.
    std::vector<pvfs::OpenFile> files;
    for (std::uint32_t i = 0; i < 3; ++i) {
      pvfs::StripeLayout layout = r.layout(kSu);
      layout.base = i * 3;  // groups 0, 1, 2
      const std::string name = "fleet/f" + std::to_string(i);
      auto f = co_await r.client_fs().create(name, layout);
      CO_ASSERT_TRUE(f.ok());
      const std::uint64_t span = 2 * f->layout.stripe_width();
      auto wr = co_await r.client_fs().write(
          *f, 0, Buffer::pattern(span, 0xF1EE7 + i));
      CO_ASSERT_TRUE(wr.ok());
      ctl.register_file(i, name, *f, span);
      files.push_back(*f);
    }

    ctl.start();
    while (mig.stats().migrations_completed < 2 || !mig.idle()) {
      co_await r.sim.sleep(sim::ms(1));
    }
    // Let a few more decision ticks confirm the fleet is converged.
    co_await r.sim.sleep(sim::ms(50));
    ctl.stop();

    // Wearout (g0) and infancy (g2) upgraded, mid-life (g1) untouched.
    EXPECT_EQ(r.policy().scheme_of(files[0]), raid::Scheme::rs(6, 3));
    EXPECT_EQ(r.policy().scheme_of(files[1]), raid::Scheme::rs(4, 2));
    EXPECT_EQ(r.policy().scheme_of(files[2]), raid::Scheme::rs(6, 3));
    const FleetStats& st = ctl.stats();
    EXPECT_EQ(st.transitions_requested, 2u);
    EXPECT_EQ(st.urgent_requested, 2u);
    EXPECT_EQ(st.elective_requested, 0u);
    EXPECT_EQ(st.rgroup_persists, 3u);
    EXPECT_GE(st.backlog_peak, 2u);
    EXPECT_EQ(ctl.backlog(), 0u);  // converged
    EXPECT_GT(st.decision_ticks, 0u);
    // The initial copy passes drew from the shared transition budget.
    EXPECT_GT(ctl.budget_bytes_taken(), 0u);
    EXPECT_EQ(mig.stats().migrations_completed, 2u);
    EXPECT_TRUE(mig.stats().ok);

    // Content survives the upgrades byte-exact.
    for (std::uint32_t i = 0; i < 3; ++i) {
      const std::uint64_t span = 2 * files[i].layout.stripe_width();
      auto rd = co_await r.client_fs().read(files[i], 0, span);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, Buffer::pattern(span, 0xF1EE7 + i)) << i;
    }

    // rgroups persisted: fresh opens carry the class id...
    for (std::uint32_t i = 0; i < 3; ++i) {
      auto f2 = co_await r.client().open("fleet/f" + std::to_string(i));
      CO_ASSERT_TRUE(f2.ok());
      EXPECT_EQ(f2->rgroup, i) << i;
    }
    // ... and survive a manager hard crash + journal replay.
    r.manager->crash(/*wipe_unsynced=*/false);
    co_await r.manager->restart();
    for (std::uint32_t i = 0; i < 3; ++i) {
      auto f3 = co_await r.client().open("fleet/f" + std::to_string(i));
      CO_ASSERT_TRUE(f3.ok());
      EXPECT_EQ(f3->rgroup, i) << i << " after replay";
      if (i != 1) {
        EXPECT_EQ(raid::scheme_from_tag(f3->scheme), raid::Scheme::rs(6, 3));
        EXPECT_EQ(f3->red_gen, 1u);
      }
    }

    // The transition log reconstructs each group's scheme schedule, and the
    // adaptive schedule never loses more data than static rs(4,2).
    const double total_years = model.added_years(r.sim.now());
    const auto g0 = ctl.scheme_periods(0, total_years);
    CO_ASSERT_EQ(g0.size(), 2u);
    EXPECT_EQ(g0.front().scheme, raid::Scheme::rs(4, 2));
    EXPECT_EQ(g0.back().scheme, raid::Scheme::rs(6, 3));
    EXPECT_DOUBLE_EQ(g0.front().begin_years, 0.0);
    EXPECT_DOUBLE_EQ(g0.back().end_years, total_years);
    const auto g1 = ctl.scheme_periods(1, total_years);
    CO_ASSERT_EQ(g1.size(), 1u);
    EXPECT_EQ(g1.front().scheme, raid::Scheme::rs(4, 2));
    const std::vector<SchemePeriod> static42 = {
        {0.0, total_years, raid::Scheme::rs(4, 2)}};
    EXPECT_LE(expected_loss_events(model, 0, g0, fp.repair_window_years),
              expected_loss_events(model, 0, static42,
                                   fp.repair_window_years));

    // Fleet gauges and counters export through the registry.
    obs::Registry reg;
    ctl.export_metrics(reg);
    EXPECT_EQ(reg.counter("fleet.transitions").value(), 2u);
    EXPECT_EQ(reg.counter("fleet.transitions_urgent").value(), 2u);
    EXPECT_EQ(reg.counter("fleet.rgroup_persists").value(), 3u);
    EXPECT_EQ(reg.gauge("fleet.disks_wearout").value(), 3.0);
    EXPECT_EQ(reg.gauge("fleet.disks_useful").value(), 3.0);
    EXPECT_EQ(reg.gauge("fleet.disks_infancy").value(), 3.0);
    EXPECT_EQ(reg.gauge("fleet.backlog").value(), 0.0);
    EXPECT_GT(reg.gauge("fleet.budget_bytes").value(), 0.0);

    const std::string table = fleet_stats_table(ctl).to_string();
    EXPECT_NE(table.find("transitions"), std::string::npos);

    mig.stop();
  }(rig));
}

// Unbudgeted mode (transition_budget_bps = 0): the controller installs no
// shared bucket and the migrator falls back to its per-migration pacing —
// the reactive-storm baseline A15 measures against.
TEST(FleetControllerTest, UnbudgetedModeInstallsNoBucket) {
  raid::Rig rig(fleet_rig_params());
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    FleetParams fp = three_class_params();
    fp.transition_budget_bps = 0.0;
    FleetModel model(r, fp);
    raid::SchemeMigrator mig(r);
    mig.start();
    FleetController ctl(r, mig, model, fp);

    pvfs::StripeLayout layout = r.layout(kSu);
    layout.base = 0;  // wearout cohort: upgrade expected
    auto f = co_await r.client_fs().create("fleet/u0", layout);
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t span = 2 * f->layout.stripe_width();
    auto wr = co_await r.client_fs().write(*f, 0,
                                           Buffer::pattern(span, 0xBEEF));
    CO_ASSERT_TRUE(wr.ok());
    ctl.register_file(0, "fleet/u0", *f, span);

    ctl.start();
    EXPECT_EQ(mig.shared_bucket(), nullptr);
    while (mig.stats().migrations_completed < 1 || !mig.idle()) {
      co_await r.sim.sleep(sim::ms(1));
    }
    ctl.stop();

    EXPECT_EQ(r.policy().scheme_of(*f), raid::Scheme::rs(6, 3));
    EXPECT_EQ(ctl.budget_bytes_taken(), 0u);
    mig.stop();
  }(rig));
}

}  // namespace
}  // namespace csar::fleet
