// End-to-end fault storm: a FaultPlan crashes a server mid-workload (with a
// blank-disk restart), drops messages on a second server's link, slows a
// third disk and plants latent sector errors on a fourth — while the client
// stack rides it out on its own: RPC deadlines + retry, health-monitor
// detection, transparent failover through the degraded paths, rebuild on
// rejoin and a scrub pass for the sector errors. The test body injects
// nothing by hand; everything arrives through the plan. Every completed
// read is verified against a shadow copy, and the whole run is
// bit-deterministic: same plan + seeds => identical metrics and trace.
#include "fault/storm.hpp"

#include <gtest/gtest.h>

#include "pvfs/io_server.hpp"

namespace csar::fault {
namespace {

StormParams storm_params(raid::Scheme scheme) {
  StormParams p;
  p.rig.scheme = scheme;
  p.rig.nservers = 4;
  p.rig.rpc.timeout = sim::ms(150);
  p.rig.rpc.max_attempts = 4;
  p.rig.rpc.backoff = sim::ms(5);
  p.rig.seed = 0xABCD;
  p.health.interval = sim::ms(100);
  p.file_size = 2 * 1024 * 1024;
  p.stripe_unit = 32 * 1024;
  p.io_size = 32 * 1024;
  p.ops = 300;
  p.op_gap = sim::ms(8);
  p.workload_seed = 2024;

  // The storm. Times are absolute simulated time; the workload preload
  // finishes well before the first fault.
  p.plan.seed = 77;
  // Server 1 hard-crashes mid-workload and rejoins on a blank disk.
  p.plan.crashes.push_back(
      {sim::ms(400), 1, sim::ms(1200), /*wipe=*/true});
  // The client<->server-2 link drops a third of its messages for a while.
  LinkFault lf;
  lf.b = 0;  // patched to real node ids below (see storm_plan_for)
  lf.start = sim::ms(300);
  lf.end = sim::ms(900);
  lf.drop_p = 0.3;
  p.plan.links.push_back(lf);
  // Server 0's disk goes fail-slow for 300 ms.
  SlowDisk sd;
  sd.start = sim::ms(500);
  sd.end = sim::ms(800);
  sd.server = 0;
  sd.factor = 3.0;
  p.plan.slow_disks.push_back(sd);
  // Latent sector errors appear under server 3's data extent late in the
  // run (after the rebuild window, as on real hardware they are found by
  // reads, not planted conveniently early).
  MediaFault mf;
  mf.at = sim::ms(2500);
  mf.server = 3;
  mf.file = pvfs::IoServer::data_name(1);
  mf.off = 0;
  mf.len = 1024 * 1024;
  p.plan.media.push_back(mf);
  return p;
}

/// Node ids depend on the rig build order (manager, servers, clients), so
/// resolve the lossy link against a throwaway rig with the same shape.
void patch_link_nodes(StormParams& p) {
  raid::Rig probe(p.rig);
  p.plan.links[0].a = probe.client().node_id();
  p.plan.links[0].b = probe.server(2).node_id();
}

TEST(FaultStorm, SurvivesWithZeroMismatches) {
  StormParams p = storm_params(raid::Scheme::raid5);
  patch_link_nodes(p);
  StormMetrics m = run_storm(p);

  // The plan fired completely.
  EXPECT_EQ(m.faults.crashes, 1u);
  EXPECT_EQ(m.faults.restarts, 1u);
  EXPECT_EQ(m.faults.media_planted, 1u);
  EXPECT_EQ(m.faults.slow_periods, 1u);
  EXPECT_GE(m.faults.msgs_dropped, 1u);

  // The client machinery did its job.
  EXPECT_GE(m.rpc_retries, 1u);
  EXPECT_GE(m.rpc_timeouts, 1u);
  EXPECT_GE(m.degraded_reads + m.degraded_writes, 1u);
  EXPECT_TRUE(m.rebuild_ok);
  EXPECT_GT(m.detection_latency, 0u);
  // Detection within ~one probe interval plus probe deadlines.
  EXPECT_LE(m.detection_latency, sim::ms(600));
  EXPECT_GT(m.mttr, 0u);

  // The contract: every byte that was acknowledged reads back correctly.
  EXPECT_EQ(m.verify_mismatches, 0u);
  EXPECT_GT(m.ops_attempted, 0u);
  EXPECT_GE(m.availability, 0.9);
}

TEST(FaultStorm, HybridSchemeSurvivesToo) {
  StormParams p = storm_params(raid::Scheme::hybrid);
  patch_link_nodes(p);
  StormMetrics m = run_storm(p);
  EXPECT_EQ(m.verify_mismatches, 0u);
  EXPECT_TRUE(m.rebuild_ok);
  EXPECT_GE(m.availability, 0.9);
}

TEST(FaultStorm, BitDeterministicAcrossRuns) {
  StormParams p = storm_params(raid::Scheme::raid5);
  patch_link_nodes(p);
  StormMetrics a = run_storm(p);
  StormMetrics b = run_storm(p);
  // Same plan + seeds => the same simulation, event for event.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.rpc_retries, b.rpc_retries);
  EXPECT_EQ(a.detection_latency, b.detection_latency);
  EXPECT_EQ(a.mttr, b.mttr);

  // A different fault seed changes the drop pattern — and therefore the
  // fingerprint — proving the fingerprint actually covers the dynamics.
  StormParams q = p;
  q.plan.seed = 78;
  StormMetrics c = run_storm(q);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

}  // namespace
}  // namespace csar::fault
