#include "pvfs/layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace csar::pvfs {
namespace {

TEST(Layout, UnitAndServerMath) {
  StripeLayout l{1024, 4};
  EXPECT_EQ(l.unit_of(0), 0u);
  EXPECT_EQ(l.unit_of(1023), 0u);
  EXPECT_EQ(l.unit_of(1024), 1u);
  EXPECT_EQ(l.server_of_unit(0), 0u);
  EXPECT_EQ(l.server_of_unit(3), 3u);
  EXPECT_EQ(l.server_of_unit(4), 0u);
  EXPECT_EQ(l.local_unit(0), 0u);
  EXPECT_EQ(l.local_unit(4), 1u);
  EXPECT_EQ(l.local_unit(9), 2u);
}

TEST(Layout, LocalOffRoundTrip) {
  StripeLayout l{1024, 4};
  // Global offset 5000 -> unit 4 (server 0, local unit 1), 904 bytes in.
  EXPECT_EQ(l.local_off(5000), 1024 + 5000 % 1024);
}

TEST(Layout, StripeWidth) {
  StripeLayout l{16 * 1024, 6};
  EXPECT_EQ(l.stripe_width(), 5u * 16 * 1024);
}

TEST(Layout, Figure2ParityPlacement) {
  // The paper's Figure 2: three servers; P[0-1] (parity of D0, D1) is on
  // I/O server 2. Groups of N-1=2 consecutive units.
  StripeLayout l{1024, 3};
  EXPECT_EQ(l.group_of_unit(0), 0u);
  EXPECT_EQ(l.group_of_unit(1), 0u);
  EXPECT_EQ(l.group_of_unit(2), 1u);
  EXPECT_EQ(l.parity_server(0), 2u);  // D0 on s0, D1 on s1 -> parity on s2
  EXPECT_EQ(l.parity_server(1), 1u);  // D2 on s2, D3 on s0 -> parity on s1
  EXPECT_EQ(l.parity_server(2), 0u);  // D4 on s1, D5 on s2 -> parity on s0
}

// Structural invariant: the parity server of a group never holds any of the
// group's data units, for any server count — single-failure recoverability.
class ParityPlacementProperty : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(ParityPlacementProperty, ParityServerHoldsNoGroupData) {
  const std::uint32_t n = GetParam();
  StripeLayout l{4096, n};
  for (std::uint64_t g = 0; g < 200; ++g) {
    const std::uint32_t ps = l.parity_server(g);
    for (std::uint64_t u = g * (n - 1); u < (g + 1) * (n - 1); ++u) {
      ASSERT_NE(l.server_of_unit(u), ps)
          << "group " << g << " unit " << u << " collides with parity";
    }
  }
}

TEST_P(ParityPlacementProperty, ParityLocalUnitsAreDense) {
  // Each server holds parity for every N-th group, packed densely into its
  // redundancy file: local indices 0,1,2,... per server with no gaps.
  const std::uint32_t n = GetParam();
  StripeLayout l{4096, n};
  std::vector<std::uint64_t> next(n, 0);
  for (std::uint64_t g = 0; g < 500; ++g) {
    const std::uint32_t ps = l.parity_server(g);
    ASSERT_EQ(l.parity_local_unit(g), next[ps]) << "group " << g;
    ++next[ps];
  }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, ParityPlacementProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 16));


// PVFS's `base` attribute shifts the whole placement; every structural
// invariant must hold for every base.
class BaseOffsetProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(BaseOffsetProperty, PlacementInvariantsHoldForEveryBase) {
  const auto [n, base] = GetParam();
  StripeLayout l{4096, n, ParityPlacement::rotating, base};
  // Unit 0 starts at the base server.
  EXPECT_EQ(l.server_of_unit(0), base % n);
  for (std::uint64_t g = 0; g < 100; ++g) {
    const std::uint32_t ps = l.parity_server(g);
    for (std::uint64_t u = g * (n - 1); u < (g + 1) * (n - 1); ++u) {
      ASSERT_NE(l.server_of_unit(u), ps)
          << "base " << base << " group " << g;
    }
  }
  // Parity files stay dense per server.
  std::vector<std::uint64_t> next(n, 0);
  for (std::uint64_t g = 0; g < 300; ++g) {
    const std::uint32_t ps = l.parity_server(g);
    ASSERT_EQ(l.parity_local_unit(g), next[ps]);
    ++next[ps];
  }
  // Decomposition still covers exactly.
  Rng rng(47 + base);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t off = rng.below(100000);
    const std::uint64_t len = 1 + rng.below(50000);
    std::uint64_t total = 0;
    for (const auto& e : l.decompose(off, len)) {
      ASSERT_EQ(e.server, l.server_of_unit(l.unit_of(e.global_off)));
      total += e.len;
    }
    ASSERT_EQ(total, len);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BasesAndSizes, BaseOffsetProperty,
    ::testing::Combine(::testing::Values(3u, 5u, 6u, 8u),
                       ::testing::Values(0u, 1u, 2u, 4u)));

TEST(Layout, DecomposeSingleUnit) {
  StripeLayout l{1024, 4};
  auto ex = l.decompose(100, 200);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].server, 0u);
  EXPECT_EQ(ex[0].global_off, 100u);
  EXPECT_EQ(ex[0].local_off, 100u);
  EXPECT_EQ(ex[0].len, 200u);
}

TEST(Layout, DecomposeCrossesUnits) {
  StripeLayout l{1024, 4};
  auto ex = l.decompose(1000, 100);  // 24 bytes in unit 0, 76 in unit 1
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0].server, 0u);
  EXPECT_EQ(ex[0].len, 24u);
  EXPECT_EQ(ex[1].server, 1u);
  EXPECT_EQ(ex[1].local_off, 0u);
  EXPECT_EQ(ex[1].len, 76u);
}

TEST(Layout, DecomposeCoversExactly) {
  StripeLayout l{512, 3};
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t off = rng.below(10000);
    const std::uint64_t len = 1 + rng.below(5000);
    auto ex = l.decompose(off, len);
    std::uint64_t pos = off;
    std::uint64_t total = 0;
    for (const auto& e : ex) {
      ASSERT_EQ(e.global_off, pos);  // contiguous, ordered
      ASSERT_EQ(e.server, l.server_of_unit(l.unit_of(e.global_off)));
      ASSERT_EQ(e.local_off, l.local_off(e.global_off));
      // Never crosses a unit boundary.
      ASSERT_EQ(l.unit_of(e.global_off), l.unit_of(e.global_off + e.len - 1));
      pos += e.len;
      total += e.len;
    }
    ASSERT_EQ(total, len);
  }
}

TEST(Layout, DecomposeMergedOneExtentPerServer) {
  StripeLayout l{512, 3};
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t off = rng.below(10000);
    const std::uint64_t len = 1 + rng.below(8000);
    auto merged = l.decompose_merged(off, len);
    std::set<std::uint32_t> seen;
    std::uint64_t total = 0;
    for (const auto& e : merged) {
      ASSERT_TRUE(seen.insert(e.server).second) << "duplicate server extent";
      total += e.len;
    }
    ASSERT_EQ(total, len);
    // Merged extent length equals the sum of that server's unit pieces, and
    // the pieces tile [local_off, local_off + len) exactly.
    for (const auto& m : merged) {
      std::uint64_t pos = m.local_off;
      for (const auto& e : l.decompose(off, len)) {
        if (e.server != m.server) continue;
        ASSERT_EQ(e.local_off, pos);
        pos += e.len;
      }
      ASSERT_EQ(pos, m.local_off + m.len);
    }
  }
}

TEST(Layout, SplitWriteAligned) {
  StripeLayout l{1000, 3};  // width 2000
  auto ws = l.split_write(2000, 4000);
  EXPECT_EQ(ws.head_start, ws.head_end);  // empty head
  EXPECT_EQ(ws.full_start, 2000u);
  EXPECT_EQ(ws.full_end, 6000u);
  EXPECT_EQ(ws.tail_start, ws.tail_end);  // empty tail
}

TEST(Layout, SplitWriteUnaligned) {
  StripeLayout l{1000, 3};  // width 2000
  auto ws = l.split_write(1500, 5000);    // [1500, 6500)
  EXPECT_EQ(ws.head_start, 1500u);
  EXPECT_EQ(ws.head_end, 2000u);
  EXPECT_EQ(ws.full_start, 2000u);
  EXPECT_EQ(ws.full_end, 6000u);
  EXPECT_EQ(ws.tail_start, 6000u);
  EXPECT_EQ(ws.tail_end, 6500u);
}

TEST(Layout, SplitWriteInsideOneGroup) {
  StripeLayout l{1000, 3};
  auto ws = l.split_write(100, 500);
  EXPECT_EQ(ws.head_start, 100u);
  EXPECT_EQ(ws.head_end, 600u);
  EXPECT_EQ(ws.full_start, ws.full_end);
  EXPECT_EQ(ws.tail_start, ws.tail_end);
}

TEST(Layout, SplitWriteCrossesBoundaryWithoutFullGroup) {
  StripeLayout l{1000, 3};
  auto ws = l.split_write(1800, 400);  // [1800, 2200): two partial segments
  EXPECT_EQ(ws.head_start, 1800u);
  EXPECT_EQ(ws.head_end, 2000u);
  EXPECT_EQ(ws.full_start, ws.full_end);
  EXPECT_EQ(ws.tail_start, 2000u);
  EXPECT_EQ(ws.tail_end, 2200u);
}

TEST(Layout, SplitWriteProperty) {
  StripeLayout l{512, 5};
  Rng rng(37);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t off = rng.below(100000);
    const std::uint64_t len = 1 + rng.below(50000);
    auto ws = l.split_write(off, len);
    const std::uint64_t w = l.stripe_width();
    // The three parts tile [off, off+len) in order.
    ASSERT_EQ(ws.head_start, off);
    ASSERT_LE(ws.head_start, ws.head_end);
    ASSERT_EQ(ws.full_start, ws.head_end);
    ASSERT_LE(ws.full_start, ws.full_end);
    ASSERT_EQ(ws.tail_start, ws.full_end);
    ASSERT_LE(ws.tail_start, ws.tail_end);
    ASSERT_EQ(ws.tail_end, off + len);
    // A non-empty full part is group-aligned; partials never span a group.
    if (ws.full_end > ws.full_start) {
      ASSERT_EQ(ws.full_start % w, 0u);
      ASSERT_EQ(ws.full_end % w, 0u);
    }
    ASSERT_LT(ws.head_end - ws.head_start, w);
    ASSERT_LT(ws.tail_end - ws.tail_start, w);
    // The paper's claim: at most two partial stripes per contiguous write.
    int partials = 0;
    if (ws.head_end > ws.head_start) ++partials;
    if (ws.tail_end > ws.tail_start) ++partials;
    ASSERT_LE(partials, 2);
  }
}

TEST(Layout, TwoServerDegenerateParity) {
  // N=2: groups are single units; parity is effectively a rotated mirror.
  StripeLayout l{1024, 2};
  EXPECT_EQ(l.stripe_width(), 1024u);
  EXPECT_EQ(l.parity_server(0), 1u);  // unit 0 on s0 -> parity on s1
  EXPECT_EQ(l.parity_server(1), 0u);  // unit 1 on s1 -> parity on s0
}

}  // namespace
}  // namespace csar::pvfs
