// csar::obs: span tracing + metrics registry.
//
// Pins the four properties the subsystem promises: (1) spans nest and keep
// their parent links across co_await boundaries, with lanes pooled per
// (pid, kind); (2) histogram percentiles match a brute-force sort under the
// documented bucket semantics; (3) the Chrome trace JSON round-trips
// through a real JSON parse and carries every layer of the request path;
// (4) observability is deterministic and non-invasive — same-seed storms
// dump byte-identical traces, and attaching a tracer leaves the storm
// fingerprint untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/storm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pvfs/io_server.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace csar::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: values, objects, arrays, strings, numbers. Enough to
// round-trip the tracer's output and count events by category.
class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : s_(s) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_lit();
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    if (s_.compare(pos_, 4, "true") == 0) return pos_ += 4, true;
    if (s_.compare(pos_, 5, "false") == 0) return pos_ += 5, true;
    if (s_.compare(pos_, 4, "null") == 0) return pos_ += 4, true;
    return false;
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(pat); p != std::string::npos;
       p = hay.find(pat, p + pat.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Span nesting across co_await.

sim::Task<void> child_work(sim::Simulation& sim, Tracer& t, std::uint32_t pid,
                           SpanId parent) {
  Span inner = t.span(pid, 1, "inner", "test", parent);
  co_await sim.sleep(sim::ms(2));
  // `inner` closes here, 2 ms after it opened, two suspension points deep.
}

sim::Task<void> outer_work(sim::Simulation& sim, Tracer& t,
                           std::uint32_t pid) {
  Span outer = t.task_span(pid, "op", "outer", "test");
  co_await sim.sleep(sim::ms(1));
  co_await child_work(sim, t, pid, outer.id());
  co_await sim.sleep(sim::ms(1));
}

TEST(ObsTrace, SpanNestingAcrossCoAwait) {
  sim::Simulation sim;
  Tracer t;
  t.attach(sim);
  const std::uint32_t pid = t.process("node");
  sim.spawn(outer_work(sim, t, pid));
  sim.run();

  ASSERT_EQ(t.span_count(), 2u);
  const Tracer::Event* outer = nullptr;
  const Tracer::Event* inner = nullptr;
  for (const auto& e : t.events()) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Parent link survives the co_await into the child coroutine.
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(outer->parent, 0u);
  // The child nests inside the parent in simulated time: opened 1 ms in,
  // closed 2 ms later, and the parent's 4 ms interval covers it.
  EXPECT_FALSE(outer->open);
  EXPECT_FALSE(inner->open);
  EXPECT_EQ(outer->start, 0u);
  EXPECT_EQ(outer->dur, sim::ms(4));
  EXPECT_EQ(inner->start, sim::ms(1));
  EXPECT_EQ(inner->dur, sim::ms(2));
}

sim::Task<void> one_shot(sim::Simulation& sim, Tracer& t, std::uint32_t pid,
                         sim::Duration d) {
  Span s = t.task_span(pid, "op", "shot", "test");
  co_await sim.sleep(d);
}

TEST(ObsTrace, LanePoolingMatchesPeakConcurrency) {
  sim::Simulation sim;
  Tracer t;
  t.attach(sim);
  const std::uint32_t pid = t.process("node");
  // Two overlapping tasks need two lanes; three more sequential ones reuse
  // them, so the lane count stays at the peak concurrency (2), not 5.
  sim.spawn(one_shot(sim, t, pid, sim::ms(5)));
  sim.spawn(one_shot(sim, t, pid, sim::ms(5)));
  sim.spawn([](sim::Simulation& s, Tracer& tr,
               std::uint32_t p) -> sim::Task<void> {
    co_await s.sleep(sim::ms(10));
    co_await one_shot(s, tr, p, sim::ms(1));
    co_await one_shot(s, tr, p, sim::ms(1));
    co_await one_shot(s, tr, p, sim::ms(1));
  }(sim, t, pid));
  sim.run();

  ASSERT_EQ(t.span_count(), 5u);
  std::set<std::uint32_t> tids;
  for (const auto& e : t.events()) {
    if (e.ph == 'X') tids.insert(e.tid);
  }
  EXPECT_EQ(tids.size(), 2u);
}

// ---------------------------------------------------------------------------
// Histogram percentiles vs brute force.

TEST(ObsMetrics, HistogramPercentilesMatchBruteForce) {
  const std::vector<std::uint64_t> bounds = Histogram::latency_bounds();
  Histogram h(bounds);
  Rng rng(99);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform-ish spread across the bucket range, plus outliers beyond
    // the last bound to exercise the overflow bucket.
    std::uint64_t v = 500 + rng.below(1000);
    const std::uint32_t shift = static_cast<std::uint32_t>(rng.below(22));
    v <<= shift;
    samples.push_back(v);
    h.add(v);
  }
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.min(), sorted.front());
  EXPECT_EQ(h.max(), sorted.back());

  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    // Documented semantics: p(q) is the upper bound of the bucket holding
    // the sample of rank ceil(q*count), or the recorded max for overflow.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(sorted.size()) + 0.9999999999);
    if (rank < 1) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    const std::uint64_t at_rank = sorted[rank - 1];
    std::uint64_t expect = sorted.back();  // overflow -> global max
    for (std::uint64_t b : bounds) {
      if (b >= at_rank) {
        expect = b;
        break;
      }
    }
    EXPECT_EQ(h.percentile(q), expect) << "q=" << q;
  }
}

TEST(ObsMetrics, RegistryDumpsAreStableAndTyped) {
  Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(1.5);
  auto& h = reg.histogram("c.hist", Histogram::size_bounds());
  h.add(4);
  h.add(700);
  // Lookup by name returns the same instrument.
  reg.counter("a.count").add(1);
  EXPECT_EQ(reg.counter("a.count").value(), 4u);

  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.find("name,kind,count,sum,min,max,p50,p95,p99"), 0u);
  // Registration order, not name order.
  EXPECT_LT(csv.find("a.count"), csv.find("b.gauge"));
  EXPECT_LT(csv.find("b.gauge"), csv.find("c.hist"));

  const std::string json = reg.to_json();
  MiniJson parsed(json);
  EXPECT_TRUE(parsed.parse());
}

// ---------------------------------------------------------------------------
// Storm-level integration: round-trip JSON, layer coverage, determinism.

fault::StormParams small_storm() {
  fault::StormParams p;
  p.rig.scheme = raid::Scheme::hybrid;
  p.rig.nservers = 4;
  p.rig.rpc.timeout = sim::ms(150);
  p.rig.rpc.max_attempts = 4;
  p.rig.rpc.backoff = sim::ms(5);
  p.health.interval = sim::ms(100);
  p.file_size = 512 * 1024;
  p.stripe_unit = 32 * 1024;
  p.io_size = 32 * 1024;
  p.ops = 80;
  p.op_gap = sim::ms(5);
  p.plan.seed = 7;
  p.plan.crashes.push_back({sim::ms(300), 1, sim::ms(900), /*wipe=*/true});
  fault::MediaFault mf;
  mf.at = sim::ms(1500);
  mf.server = 3;
  mf.file = pvfs::IoServer::data_name(1);
  mf.off = 0;
  mf.len = 256 * 1024;
  p.plan.media.push_back(mf);
  return p;
}

TEST(ObsStorm, TraceJsonRoundTripsAndCoversEveryLayer) {
  if (!kEnabled) GTEST_SKIP() << "hooks compiled out (CSAR_OBS=0)";
  Tracer tracer;
  Registry metrics;
  fault::StormParams p = small_storm();
  p.tracer = &tracer;
  p.metrics = &metrics;
  const fault::StormMetrics m = fault::run_storm(p);
  EXPECT_EQ(m.verify_mismatches, 0u);

  const std::string json = tracer.to_json();
  MiniJson parsed(json);
  EXPECT_TRUE(parsed.parse());

  // Spans from every layer of the request path...
  EXPECT_GT(count_occurrences(json, "\"cat\":\"fs\""), 0u);      // CsarFs op
  EXPECT_GT(count_occurrences(json, "\"cat\":\"rpc\""), 0u);     // client RPC
  EXPECT_GT(count_occurrences(json, "\"cat\":\"net\""), 0u);     // fabric
  EXPECT_GT(count_occurrences(json, "\"cat\":\"server\""), 0u);  // server exec
  EXPECT_GT(count_occurrences(json, "\"cat\":\"disk\""), 0u);    // cache/disk
  // ...plus instants for injected faults and rebuild phases, and spans for
  // named simulator tasks (timeline, supervisors).
  EXPECT_GT(count_occurrences(json, "\"name\":\"crash\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"rebuild:start\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"rebuild:admit\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"cat\":\"task\""), 0u);
  EXPECT_GT(tracer.span_count(), 100u);
  EXPECT_GT(tracer.instant_count(), 2u);

  // The live metrics recorded alongside: RPC latencies and rig aggregates.
  EXPECT_GT(metrics.histogram("client.rpc_ns").count(), 0u);
  EXPECT_EQ(metrics.counter("rig.rpc_sent").value(), m.rpc_sent);
}

TEST(ObsStorm, SameSeedTracesAreByteIdentical) {
  std::string json[2];
  std::string csv[2];
  for (int i = 0; i < 2; ++i) {
    Tracer tracer;
    Registry metrics;
    fault::StormParams p = small_storm();
    p.tracer = &tracer;
    p.metrics = &metrics;
    p.sample_window = sim::ms(20);
    const fault::StormMetrics m = fault::run_storm(p);
    json[i] = tracer.to_json();
    csv[i] = metrics.to_csv() + m.samples_csv;
    EXPECT_GT(m.samples_csv.size(), 0u);
    EXPECT_EQ(m.samples_csv.rfind("time_ms,", 0), 0u);
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(ObsStorm, AttachingTracerLeavesFingerprintUntouched) {
  const fault::StormMetrics plain = fault::run_storm(small_storm());

  Tracer tracer;
  Registry metrics;
  fault::StormParams p = small_storm();
  p.tracer = &tracer;
  p.metrics = &metrics;
  const fault::StormMetrics traced = fault::run_storm(p);

  // The tracer observes; it must not perturb. Same events, same end time,
  // same fingerprint as the bare run.
  EXPECT_EQ(traced.events_executed, plain.events_executed);
  EXPECT_EQ(traced.finished_at, plain.finished_at);
  EXPECT_EQ(traced.fingerprint, plain.fingerprint);
}

}  // namespace
}  // namespace csar::obs
