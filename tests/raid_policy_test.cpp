// Per-file redundancy policy layer: path rules route each file to its own
// scheme (with matching parity placement), the scheme tag is metadata that
// survives server crash/restart, adaptive decisions are deterministic for a
// fixed seed, and a mid-storm online migration is byte-exact under
// concurrent writes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/storm.hpp"
#include "raid/migrate.hpp"
#include "raid/policy.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "raid/scrub.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

TEST(RaidPolicyTest, RulesAndDefaultAssign) {
  PolicyParams pp;
  pp.default_scheme = Scheme::hybrid;
  pp.rules.push_back({"mirror/", Scheme::raid1});
  pp.rules.push_back({"parity/", Scheme::raid5});
  pp.rules.push_back({"scratch/", Scheme::raid0});
  RedundancyPolicy pol(pp);
  EXPECT_EQ(pol.assign("mirror/log"), Scheme::raid1);
  EXPECT_EQ(pol.assign("parity/ckpt"), Scheme::raid5);
  EXPECT_EQ(pol.assign("scratch/tmp0"), Scheme::raid0);
  EXPECT_EQ(pol.assign("data/other"), Scheme::hybrid);
}

// One deployment, four files, four schemes: each file's tag and placement
// come from its path rule, every file reads back byte-exact (degraded reads
// included, per the file's own redundancy), and the tags survive a server
// crash/restart plus fresh opens.
TEST(RaidPolicyTest, PerFileSchemesAcrossCrashRestart) {
  RigParams p;
  p.scheme = Scheme::hybrid;
  p.nservers = 5;
  p.policy.rules.push_back({"mirror/", Scheme::raid1});
  p.policy.rules.push_back({"parity/", Scheme::raid5});
  p.policy.rules.push_back({"fixed/", Scheme::raid4});
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    struct Spec {
      const char* name;
      Scheme scheme;
    };
    const std::vector<Spec> specs = {{"mirror/a", Scheme::raid1},
                                     {"parity/b", Scheme::raid5},
                                     {"fixed/c", Scheme::raid4},
                                     {"plain/d", Scheme::hybrid}};
    std::vector<pvfs::OpenFile> files;
    std::vector<RefFile> refs(specs.size());
    Rng rng(4242);
    for (const auto& s : specs) {
      auto f = co_await r.client_fs().create(s.name, r.layout(kSu));
      CO_ASSERT_TRUE(f.ok());
      EXPECT_EQ(scheme_from_tag(f->scheme), s.scheme) << s.name;
      EXPECT_EQ(f->layout.placement, placement_for(s.scheme)) << s.name;
      EXPECT_EQ(r.policy().scheme_of(*f), s.scheme) << s.name;
      files.push_back(*f);
    }
    const std::uint64_t span = 3 * files[0].layout.stripe_width();
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (int w = 0; w < 6; ++w) {
        const std::uint64_t off = rng.below(span - 1);
        const std::uint64_t len =
            1 + rng.below(std::min<std::uint64_t>(span - off - 1, 2 * kSu));
        Buffer data = Buffer::pattern(len, rng.next());
        refs[i].write(off, data);
        auto wr = co_await r.client_fs().write(files[i], off,
                                               std::move(data));
        CO_ASSERT_TRUE(wr.ok());
      }
    }

    // Healthy reads: every file byte-exact through its own scheme.
    for (std::size_t i = 0; i < files.size(); ++i) {
      auto rd = co_await r.client_fs().read(files[i], 0, refs[i].size());
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, refs[i].expect(0, refs[i].size())) << specs[i].name;
    }

    // Degraded reads resolve the victim's coverage per file: the same lost
    // server is fine for the mirrored, rotating-parity and fixed-parity
    // files alike in one pass.
    Recovery rec = r.recovery();
    r.server(0).fail();
    for (std::size_t i = 0; i < files.size(); ++i) {
      auto rd = co_await rec.degraded_read(files[i], 0, refs[i].size(), 0);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, refs[i].expect(0, refs[i].size()))
          << specs[i].name << " degraded";
    }
    r.server(0).recover();

    // Crash/restart a server (disk survives): fresh opens must come back
    // with the per-file scheme tags and the content must still verify.
    r.server(1).fail();
    r.server(1).recover();
    for (std::size_t i = 0; i < files.size(); ++i) {
      auto f2 = co_await r.client().open(specs[i].name);
      CO_ASSERT_TRUE(f2.ok());
      EXPECT_EQ(scheme_from_tag(f2->scheme), specs[i].scheme);
      EXPECT_EQ(f2->red_gen, 0u);
      auto rd = co_await r.client_fs().read(*f2, 0, refs[i].size());
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, refs[i].expect(0, refs[i].size()))
          << specs[i].name << " after restart";
    }
  }(rig));
}

// Online migration Hybrid -> RAID1 with a writer running the whole time:
// the flip must be invisible (every byte matches the reference), the new
// mirror redundancy must carry degraded reads for every possible victim,
// the manager must persist the new tag + generation, and the scrubber must
// find the migrated file clean.
TEST(RaidPolicyTest, OnlineMigrationByteExactUnderConcurrentWrites) {
  RigParams p;
  p.scheme = Scheme::hybrid;
  p.nservers = 5;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("hot", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t span = 4 * f->layout.stripe_width();
    RefFile ref;
    Rng rng(77001);
    // Preload.
    {
      Buffer data = Buffer::pattern(span, rng.next());
      ref.write(0, data);
      auto wr = co_await r.client_fs().write(*f, 0, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }

    SchemeMigrator mig(r);
    mig.track("hot", *f, span);
    mig.start();

    // Concurrent writer: small partial-stripe writes before, during and
    // after the migration window.
    bool writer_done = false;
    r.sim.spawn([](Rig& r, pvfs::OpenFile f, std::uint64_t span, RefFile* ref,
                   Rng* rng, bool* done) -> sim::Task<void> {
      for (int i = 0; i < 60; ++i) {
        const std::uint64_t off = rng->below(span - 1);
        const std::uint64_t len =
            1 + rng->below(std::min<std::uint64_t>(span - off - 1, 2 * kSu));
        Buffer data = Buffer::pattern(len, rng->next());
        ref->write(off, data);
        auto wr = co_await r.client_fs().write(f, off, std::move(data));
        EXPECT_TRUE(wr.ok());
        co_await r.sim.sleep(sim::ms(1));
      }
      *done = true;
    }(r, *f, span, &ref, &rng, &writer_done));

    co_await r.sim.sleep(sim::ms(10));
    mig.request(f->handle, Scheme::raid1);
    while (!writer_done || !mig.idle() ||
           mig.stats().migrations_started == 0) {
      co_await r.sim.sleep(sim::ms(1));
    }
    EXPECT_EQ(mig.stats().migrations_completed, 1u);
    EXPECT_TRUE(mig.stats().ok);
    EXPECT_EQ(r.policy().scheme_of(*f), Scheme::raid1);
    EXPECT_EQ(r.policy().red_gen_of(*f), 1u);

    // Byte-exact through the flip.
    auto rd = co_await r.client_fs().read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));

    // The manager persisted the transition: fresh opens see RAID1 @ gen 1.
    auto f2 = co_await r.client().open("hot");
    CO_ASSERT_TRUE(f2.ok());
    EXPECT_EQ(scheme_from_tag(f2->scheme), Scheme::raid1);
    EXPECT_EQ(f2->red_gen, 1u);

    // The new base redundancy + retained overflow overlay carry the loss of
    // every server in turn.
    Recovery rec = r.recovery();
    for (std::uint32_t victim = 0; victim < r.p.nservers; ++victim) {
      r.server(victim).fail();
      auto drd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
      CO_ASSERT_TRUE(drd.ok());
      EXPECT_EQ(*drd, ref.expect(0, ref.size())) << "victim " << victim;
      r.server(victim).recover();
    }

    // And the migrated file audits clean under its new scheme.
    Scrubber scrub(r.client(), &r.policy());
    auto rep = co_await scrub.verify(*f, ref.size());
    CO_ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep->clean());

    mig.stop();
  }(rig));
}

// Adaptive engine under a fault storm: decisions (and everything downstream
// of them) must be a pure function of the seeds — two identical runs agree
// on every counter and on the fingerprint.
TEST(RaidPolicyTest, AdaptiveDecisionsDeterministicForFixedSeed) {
  auto make = [] {
    fault::StormParams p;
    p.rig.scheme = Scheme::hybrid;
    p.rig.nservers = 5;
    p.rig.rpc.timeout = sim::ms(150);
    p.rig.rpc.max_attempts = 4;
    p.rig.rpc.backoff = sim::ms(5);
    p.health.interval = sim::ms(100);
    p.file_size = 1 * 1024 * 1024;
    p.stripe_unit = 32 * 1024;
    p.io_size = 4 * 1024;
    p.ops = 150;
    p.op_gap = sim::ms(4);
    p.adaptive = true;
    auto& a = p.rig.policy.adaptive;
    a.enabled = true;
    a.rpc_pressure_threshold = 4;
    a.partial_ratio_threshold = 0.05;
    a.min_observed_bytes = 512 * 1024;
    p.plan.seed = 555;
    raid::Rig probe(p.rig);
    fault::LinkFault lf;
    lf.a = probe.client().node_id();
    lf.b = probe.server(0).node_id();
    lf.start = sim::ms(100);
    lf.end = sim::ms(500);
    lf.drop_p = 0.3;
    p.plan.links.push_back(lf);
    return p;
  };
  const fault::StormMetrics a = fault::run_storm(make());
  const fault::StormMetrics b = fault::run_storm(make());
  EXPECT_GE(a.migrations_completed, 1u);
  EXPECT_EQ(a.verify_mismatches, 0u);
  EXPECT_EQ(a.migrations_started, b.migrations_started);
  EXPECT_EQ(a.migrations_completed, b.migrations_completed);
  EXPECT_EQ(a.migrations_failed, b.migrations_failed);
  EXPECT_EQ(a.migrate_dirty_bytes, b.migrate_dirty_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

// Manual mid-storm migration with the op mix running concurrently and a
// scheme mix on disk: the storm's shadow verification is the byte-exactness
// oracle (every acknowledged read and the full final sweep must match).
TEST(RaidPolicyTest, MidStormMigrationByteExact) {
  fault::StormParams p;
  p.rig.scheme = Scheme::hybrid;
  p.rig.nservers = 5;
  p.file_size = 1 * 1024 * 1024;
  p.stripe_unit = 32 * 1024;
  p.io_size = 16 * 1024;
  p.ops = 200;
  p.op_gap = sim::ms(2);
  p.nfiles = 2;
  // File 0 Hybrid (the migration source), file 1 RAID5 (mixed-scheme storm).
  p.file_schemes = {Scheme::hybrid, Scheme::raid5};
  p.migrate_file = 0;
  p.migrate_to = Scheme::raid1;
  p.migrate_at = sim::ms(100);
  const fault::StormMetrics m = fault::run_storm(p);
  EXPECT_EQ(m.migrations_completed, 1u);
  EXPECT_EQ(m.migrations_failed, 0u);
  EXPECT_EQ(m.verify_mismatches, 0u);
  EXPECT_EQ(m.ops_failed, 0u);  // no faults in the plan
  EXPECT_EQ(m.tainted_bytes, 0u);
}

}  // namespace
}  // namespace csar::raid
