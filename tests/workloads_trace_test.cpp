// Trace record/replay: serialization round trips, characterization stats,
// and replays that match direct workload runs.
#include "workloads/trace.hpp"

#include <gtest/gtest.h>

#include "raid/rig.hpp"
#include "workloads/harness.hpp"

namespace csar::wl {
namespace {

using raid::Rig;
using raid::RigParams;
using raid::Scheme;

TEST(Trace, BasicAccounting) {
  Trace t;
  t.add_write(0, 0, 100);
  t.add_write(1, 200, 50);
  t.add_read(0, 0, 100);
  t.add_barrier();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.nclients(), 2u);
  EXPECT_EQ(t.bytes_written(), 150u);
  EXPECT_EQ(t.bytes_read(), 100u);
  EXPECT_EQ(t.extent(), 250u);
}

TEST(Trace, FractionBelowThreshold) {
  Trace t;
  t.add_write(0, 0, 1000);
  t.add_write(0, 0, 1000);
  t.add_write(0, 0, 100000);
  EXPECT_NEAR(t.fraction_below(2048), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(t.fraction_below(10), 0.0, 1e-9);
}

TEST(Trace, SerializeParseRoundTrip) {
  Trace t;
  t.add_write(0, 0, 4096);
  t.add_read(3, 123456789, 777);
  t.add_barrier();
  t.add_write(2, 1, 1);
  auto parsed = Trace::parse(t.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(static_cast<int>(parsed->ops()[i].kind),
              static_cast<int>(t.ops()[i].kind));
    EXPECT_EQ(parsed->ops()[i].client, t.ops()[i].client);
    EXPECT_EQ(parsed->ops()[i].offset, t.ops()[i].offset);
    EXPECT_EQ(parsed->ops()[i].length, t.ops()[i].length);
  }
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_FALSE(Trace::parse("W 1 2\n").ok());       // missing field
  EXPECT_FALSE(Trace::parse("X 1 2 3\n").ok());     // unknown kind
  EXPECT_TRUE(Trace::parse("# only comments\n").ok());
  EXPECT_TRUE(Trace::parse("").ok());
}

TEST(Trace, SynthesizedFlashMatchesCharacterization) {
  // The §6.7 numbers: 46% of requests under 2 KB at 4 procs.
  Trace t = synthesize_flash_trace(4, 45 * MB, 0.46, 2003);
  EXPECT_GT(t.size(), 100u);
  EXPECT_NEAR(t.fraction_below(2048), 0.46, 0.08);
  EXPECT_NEAR(static_cast<double>(t.extent()),
              static_cast<double>(45 * MB), 0.03 * 45 * MB);
  // Deterministic in the seed.
  Trace t2 = synthesize_flash_trace(4, 45 * MB, 0.46, 2003);
  EXPECT_EQ(t.serialize(), t2.serialize());
  Trace t3 = synthesize_flash_trace(4, 45 * MB, 0.46, 2004);
  EXPECT_NE(t.serialize(), t3.serialize());
}

TEST(TraceReplay, RunsAndAccountsBytes) {
  RigParams p;
  p.scheme = Scheme::hybrid;
  p.nservers = 6;
  p.nclients = 4;
  Rig rig(p);
  Trace t = synthesize_flash_trace(4, 8 * MB, 0.46, 7);
  auto res = run_on(rig, replay(rig, t, 16 * 1024));
  EXPECT_EQ(res.bytes_written, t.bytes_written());
  EXPECT_GT(res.write_bw(), 1e6);
}

TEST(TraceReplay, DeterministicAcrossRuns) {
  auto run_once = [] {
    RigParams p;
    p.scheme = Scheme::raid5;
    p.nservers = 5;
    p.nclients = 3;
    Rig rig(p);
    Trace t = synthesize_flash_trace(3, 6 * MB, 0.4, 11);
    return run_on(rig, replay(rig, t, 16 * 1024)).write_time;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TraceReplay, BarrierSynchronizesClients) {
  RigParams p;
  p.scheme = Scheme::raid0;
  p.nservers = 4;
  p.nclients = 2;
  Rig rig(p);
  // Client 0 writes a lot, client 1 a little; the barrier forces both to
  // finish phase 1 before phase 2 begins, so total time ~= sum of the
  // slowest phases rather than each client's own sum.
  Trace with_barrier;
  for (int i = 0; i < 16; ++i) {
    with_barrier.add_write(0, static_cast<std::uint64_t>(i) * MB, 1 * MB);
  }
  with_barrier.add_write(1, 100 * MB, 64 * 1024);
  with_barrier.add_barrier();
  for (int i = 0; i < 16; ++i) {
    with_barrier.add_write(1, 200 * MB + static_cast<std::uint64_t>(i) * MB,
                           1 * MB);
  }
  with_barrier.add_write(0, 300 * MB, 64 * 1024);
  auto res = run_on(rig, replay(rig, with_barrier, 64 * 1024));
  // Phase 1 is client-0-bound, phase 2 client-1-bound: both 16 MB streams
  // run back to back, never overlapping.
  RigParams p2 = p;
  Rig rig2(p2);
  Trace no_barrier = with_barrier;  // same ops minus synchronization
  Trace nb;
  for (const auto& op : no_barrier.ops()) {
    if (op.kind != TraceOp::Kind::barrier) {
      nb.add_write(op.client, op.offset, op.length);
    }
  }
  auto res2 = run_on(rig2, replay(rig2, nb, 64 * 1024));
  EXPECT_GT(res.write_time, res2.write_time);  // barrier serializes phases
}

TEST(TraceReplay, SameTraceDifferentSchemesRankSensibly) {
  // Replaying one FLASH-like trace across schemes reproduces the paper's
  // ordering for small-write-dominated workloads.
  std::map<Scheme, double> bw;
  for (Scheme s : {Scheme::raid0, Scheme::raid1, Scheme::raid5,
                   Scheme::hybrid}) {
    RigParams p;
    p.scheme = s;
    p.nservers = 6;
    p.nclients = 4;
    Rig rig(p);
    Trace t = synthesize_flash_trace(4, 12 * MB, 0.46, 99);
    bw[s] = run_on(rig, replay(rig, t, 16 * 1024)).write_bw();
  }
  EXPECT_GT(bw[Scheme::raid0], bw[Scheme::hybrid]);
  EXPECT_GT(bw[Scheme::hybrid], bw[Scheme::raid5]);
}

}  // namespace
}  // namespace csar::wl
