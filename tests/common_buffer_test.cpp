#include "common/buffer.hpp"

#include <gtest/gtest.h>

namespace csar {
namespace {

TEST(Buffer, RealZeroFilled) {
  Buffer b = Buffer::real(16);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_TRUE(b.materialized());
  for (auto byte : b.bytes()) EXPECT_EQ(byte, std::byte{0});
}

TEST(Buffer, PhantomCarriesOnlySize) {
  Buffer b = Buffer::phantom(1ull << 40);  // 1 TiB costs nothing
  EXPECT_EQ(b.size(), 1ull << 40);
  EXPECT_FALSE(b.materialized());
}

TEST(Buffer, PatternDeterministic) {
  Buffer a = Buffer::pattern(64, 42);
  Buffer b = Buffer::pattern(64, 42);
  Buffer c = Buffer::pattern(64, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a == c, true);
}

TEST(Buffer, SliceCopiesRange) {
  Buffer a = Buffer::pattern(64, 7);
  Buffer s = a.slice(8, 16);
  EXPECT_EQ(s.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(s.bytes()[i], a.bytes()[i + 8]);
  }
}

TEST(Buffer, PhantomSliceStaysPhantom) {
  Buffer p = Buffer::phantom(100);
  Buffer s = p.slice(10, 20);
  EXPECT_FALSE(s.materialized());
  EXPECT_EQ(s.size(), 20u);
}

TEST(Buffer, WriteAtSplices) {
  Buffer dst = Buffer::real(32);
  Buffer src = Buffer::pattern(8, 3);
  dst.write_at(12, src);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dst.bytes()[12 + i], src.bytes()[i]);
  }
  EXPECT_EQ(dst.bytes()[11], std::byte{0});
  EXPECT_EQ(dst.bytes()[20], std::byte{0});
}

TEST(Buffer, XorSelfGivesZero) {
  Buffer a = Buffer::pattern(128, 9);
  Buffer b = Buffer::pattern(128, 9);
  a.xor_with(b);
  for (auto byte : a.bytes()) EXPECT_EQ(byte, std::byte{0});
}

TEST(Buffer, XorRoundTrip) {
  Buffer a = Buffer::pattern(100, 1);
  const Buffer orig = a.slice(0, 100);
  Buffer k = Buffer::pattern(100, 2);
  a.xor_with(k);
  EXPECT_FALSE(a == orig);
  a.xor_with(k);
  EXPECT_EQ(a, orig);
}

TEST(Buffer, ResizeZeroExtends) {
  Buffer a = Buffer::pattern(8, 5);
  a.resize(16);
  EXPECT_EQ(a.size(), 16u);
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(a.bytes()[i], std::byte{0});
}

TEST(Buffer, EqualityBySizeForPhantom) {
  EXPECT_TRUE(Buffer::phantom(5) == Buffer::phantom(5));
  EXPECT_FALSE(Buffer::phantom(5) == Buffer::phantom(6));
  EXPECT_FALSE(Buffer::phantom(5) == Buffer::real(5));
}


TEST(Buffer, XorAtOffsetColumns) {
  // The RAID5 delta path XORs a delta into parity at a column offset.
  Buffer parity = Buffer::pattern(100, 1);
  Buffer delta = Buffer::pattern(30, 2);
  Buffer expect = parity.slice(0, 100);
  for (std::size_t i = 0; i < 30; ++i) {
    expect.mutable_bytes()[40 + i] =
        expect.bytes()[40 + i] ^ delta.bytes()[i];
  }
  parity.xor_at(40, delta);
  EXPECT_EQ(parity, expect);
}

TEST(Buffer, XorAtPhantomNoOp) {
  Buffer a = Buffer::phantom(100);
  Buffer b = Buffer::phantom(40);
  a.xor_at(10, b);  // must not crash and must stay phantom
  EXPECT_FALSE(a.materialized());
  EXPECT_EQ(a.size(), 100u);
}

TEST(Buffer, XorAtEmptySource) {
  Buffer a = Buffer::pattern(10, 1);
  const Buffer orig = a.slice(0, 10);
  a.xor_at(5, Buffer::real(0));
  EXPECT_EQ(a, orig);
}

TEST(Buffer, MoveLeavesSourceEmptyVector) {
  Buffer a = Buffer::pattern(64, 1);
  const void* data = a.bytes().data();
  Buffer b = std::move(a);
  EXPECT_EQ(b.bytes().data(), data);  // ownership transferred, no copy
  EXPECT_EQ(b.size(), 64u);
}

TEST(Buffer, SliceAtEnd) {
  Buffer a = Buffer::pattern(10, 1);
  Buffer s = a.slice(10, 0);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Buffer, PatternZeroLength) {
  Buffer a = Buffer::pattern(0, 77);
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.materialized());
}

}  // namespace
}  // namespace csar
