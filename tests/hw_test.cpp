#include <gtest/gtest.h>

#include "hw/disk.hpp"
#include "hw/node.hpp"
#include "hw/page_cache.hpp"
#include "sim/simulation.hpp"

namespace csar::hw {
namespace {

TEST(Disk, SequentialAccessSkipsSeek) {
  sim::Simulation sim;
  DiskParams p;
  p.bytes_per_sec = 100e6;
  p.seek = sim::ms(10);
  p.per_op = 0;
  Disk disk(sim, p);
  sim.spawn([](Disk& d) -> sim::Task<void> {
    co_await d.write(0, 1'000'000);        // seek + 10ms transfer
    co_await d.write(1'000'000, 1'000'000);  // sequential: 10ms only
  }(disk));
  sim.run();
  EXPECT_EQ(sim.now(), sim::ms(10) + sim::ms(10) + sim::ms(10));
  EXPECT_EQ(disk.stats().seeks, 1u);
  EXPECT_EQ(disk.stats().writes, 2u);
  EXPECT_EQ(disk.stats().bytes_written, 2'000'000u);
}

TEST(Disk, RandomAccessSeeksEveryTime) {
  sim::Simulation sim;
  DiskParams p;
  p.bytes_per_sec = 100e6;
  p.seek = sim::ms(10);
  p.per_op = 0;
  Disk disk(sim, p);
  sim.spawn([](Disk& d) -> sim::Task<void> {
    co_await d.read(0, 4096);
    co_await d.read(1'000'000, 4096);
    co_await d.read(0, 4096);
  }(disk));
  sim.run();
  EXPECT_EQ(disk.stats().seeks, 3u);
}

TEST(Disk, ConcurrentRequestsSerializeFifo) {
  sim::Simulation sim;
  DiskParams p;
  p.bytes_per_sec = 100e6;
  p.seek = 0;
  p.per_op = 0;
  Disk disk(sim, p);
  std::vector<sim::Time> done;
  auto io = [](Disk& d, std::vector<sim::Time>& v,
               sim::Simulation& s) -> sim::Task<void> {
    co_await d.write(0, 1'000'000);  // 10 ms each (no seek from 0? -> first
                                     // seeks cost 0 here)
    v.push_back(s.now());
  };
  sim.spawn(io(disk, done, sim));
  sim.spawn(io(disk, done, sim));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], sim::ms(10));
  EXPECT_EQ(done[1], sim::ms(20));
}

TEST(Disk, ServiceFactorRoundTripAndSlowBusyTime) {
  sim::Simulation sim;
  DiskParams p;
  p.bytes_per_sec = 100e6;
  p.seek = sim::ms(10);
  p.per_op = 0;
  Disk disk(sim, p);
  // Round-trip: the setter stores exactly, clamping negatives to 0.
  EXPECT_EQ(disk.service_factor(), 1.0);
  disk.set_service_factor(3.5);
  EXPECT_EQ(disk.service_factor(), 3.5);
  disk.set_service_factor(-2.0);
  EXPECT_EQ(disk.service_factor(), 0.0);
  disk.set_service_factor(1.0);
  EXPECT_EQ(disk.service_factor(), 1.0);

  sim.spawn([](Disk& d) -> sim::Task<void> {
    co_await d.write(0, 1'000'000);  // seek 10ms + 10ms transfer, healthy
    d.set_service_factor(2.0);
    co_await d.write(1'000'000, 1'000'000);  // sequential 10ms -> 20ms
    d.set_service_factor(1.0);
    co_await d.write(2'000'000, 1'000'000);  // healthy again
  }(disk));
  sim.run();
  const auto st = disk.stats();
  EXPECT_EQ(st.busy_time, sim::ms(20) + sim::ms(20) + sim::ms(10));
  // Only the inflated op's actual-minus-nominal share is attributed: a
  // loaded healthy disk keeps slow_busy_time at zero.
  EXPECT_EQ(st.slow_busy_time, sim::ms(10));
}

TEST(Aging, BathtubClassBoundaries) {
  AgingParams a;  // defaults: infancy ends 0.5y, wearout begins 4.0y
  a.age_years = 0.0;
  EXPECT_EQ(a.afr_class(0.0), AfrClass::infancy);
  EXPECT_EQ(a.afr_class(0.49), AfrClass::infancy);
  EXPECT_EQ(a.afr_class(0.5), AfrClass::useful_life);
  EXPECT_EQ(a.afr_class(3.99), AfrClass::useful_life);
  EXPECT_EQ(a.afr_class(4.0), AfrClass::wearout);
  EXPECT_EQ(a.afr(0.0), a.afr_infancy);
  EXPECT_EQ(a.afr(1.0), a.afr_useful);
  EXPECT_EQ(a.afr(5.0), a.afr_wearout);
  EXPECT_DOUBLE_EQ(a.years_to_next_class(0.1), 0.4);
  EXPECT_DOUBLE_EQ(a.years_to_next_class(1.0), 3.0);
  EXPECT_GT(a.years_to_next_class(5.0), 1e8);  // terminal segment
  // A disk that starts mid-life skips infancy entirely.
  a.age_years = 2.0;
  EXPECT_EQ(a.afr_class(0.0), AfrClass::useful_life);
  EXPECT_EQ(a.afr_class(2.0), AfrClass::wearout);
}

TEST(Aging, ProfileDeterministicPerSeedAndIndex) {
  const AgingParams a = aging_profile(42, 7, 2.0);
  const AgingParams b = aging_profile(42, 7, 2.0);
  EXPECT_EQ(a.age_years, b.age_years);
  EXPECT_EQ(a.infancy_years, b.infancy_years);
  EXPECT_EQ(a.wearout_years, b.wearout_years);
  EXPECT_EQ(a.afr_infancy, b.afr_infancy);
  EXPECT_EQ(a.afr_useful, b.afr_useful);
  EXPECT_EQ(a.afr_wearout, b.afr_wearout);
  // Different disks from the same seed are heterogeneous.
  const AgingParams c = aging_profile(42, 8, 2.0);
  EXPECT_NE(a.afr_useful, c.afr_useful);
  // Sanity: jitter keeps the curve well-formed and age non-negative.
  EXPECT_GE(a.age_years, 0.0);
  EXPECT_GT(a.wearout_years, a.infancy_years);
  EXPECT_GT(a.afr_infancy, 0.0);
  EXPECT_GT(a.afr_wearout, a.afr_useful);
  // A zero batch age never jitters negative (clamped).
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_GE(aging_profile(42, i, 0.0).age_years, 0.0) << i;
  }
}

struct CacheFixture {
  sim::Simulation sim;
  Disk disk;
  sim::BandwidthServer mem;
  PageCache cache;

  explicit CacheFixture(CacheParams cp, DiskParams dp = fast_disk())
      : disk(sim, dp), mem(sim, 1e12), cache(sim, disk, mem, cp) {}

  static DiskParams fast_disk() {
    DiskParams p;
    p.bytes_per_sec = 100e6;
    p.seek = sim::ms(10);
    p.per_op = 0;
    return p;
  }
};

TEST(PageCache, WriteMissThenReadHit) {
  CacheParams cp;
  cp.capacity_bytes = 1 << 20;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 4096, PageCache::dense(0));  // new content: no pre-read
    co_await fx.cache.read(1, 0, 4096, PageCache::dense(4096));  // hit
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cache.stats().prereads, 0u);
  EXPECT_EQ(f.cache.stats().hits, 1u);
  EXPECT_EQ(f.disk.stats().reads, 0u);
}

TEST(PageCache, PartialWriteToUncachedPreexistingPagePrereads) {
  // The §5.2 behaviour: sub-page write + old content on disk + cold cache
  // => read-modify-write.
  CacheParams cp;
  cp.capacity_bytes = 1 << 20;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 8192, PageCache::dense(0));  // create two pages
    co_await fx.cache.flush_all();
    fx.cache.drop_all();                     // cold cache
    co_await fx.cache.write(1, 100, 200, PageCache::dense(8192));  // partial, preexisting
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cache.stats().prereads, 1u);
  EXPECT_EQ(f.disk.stats().reads, 1u);
}

TEST(PageCache, FullPageWriteNeverPrereads) {
  CacheParams cp;
  cp.capacity_bytes = 1 << 20;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 4096, PageCache::dense(0));
    co_await fx.cache.flush_all();
    fx.cache.drop_all();
    co_await fx.cache.write(1, 0, 4096, PageCache::dense(4096));  // full overwrite
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cache.stats().prereads, 0u);
}

TEST(PageCache, PadPartialSuppressesPreread) {
  // §6.5 padding experiment: treating partial writes as full blocks removes
  // the pre-read.
  CacheParams cp;
  cp.capacity_bytes = 1 << 20;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 8192, PageCache::dense(0));
    co_await fx.cache.flush_all();
    fx.cache.drop_all();
    co_await fx.cache.write(1, 100, 200, PageCache::dense(8192), /*pad_partial=*/true);
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cache.stats().prereads, 0u);
}

TEST(PageCache, HoleWritesNeedNoPreread) {
  CacheParams cp;
  cp.capacity_bytes = 1 << 20;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    // Partial write far beyond existing content: page is a hole.
    co_await fx.cache.write(1, 1 << 20, 100, PageCache::dense(4096));
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cache.stats().prereads, 0u);
}

TEST(PageCache, EvictionWritesDirtyPages) {
  CacheParams cp;
  cp.capacity_bytes = 16 * 4096;  // 16 pages
  cp.page_size = 4096;
  cp.evict_batch = 4;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 64 * 4096, PageCache::dense(0));  // 4x capacity
  }(f));
  f.sim.run();
  EXPECT_GT(f.cache.stats().dirty_evictions, 0u);
  EXPECT_GT(f.disk.stats().bytes_written, 0u);
  EXPECT_LE(f.cache.resident_bytes(), 16u * 4096);
}

TEST(PageCache, CacheAbsorbsUntilFullThenDiskBound) {
  // Below capacity the disk is untouched (write-behind absorbs); beyond it
  // the writer stalls on evictions — the Class C effect.
  CacheParams cp;
  cp.capacity_bytes = 256 * 4096;
  cp.page_size = 4096;
  CacheFixture small(cp);
  small.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 128 * 4096, PageCache::dense(0));  // half capacity
  }(small));
  small.sim.run();
  EXPECT_EQ(small.disk.stats().writes, 0u);
  const sim::Time t_small = small.sim.now();

  CacheFixture big(cp);
  big.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 1024 * 4096, PageCache::dense(0));  // 4x capacity
  }(big));
  big.sim.run();
  EXPECT_GT(big.disk.stats().writes, 0u);
  // 8x the data but much more than 8x the time (disk-bound region).
  EXPECT_GT(big.sim.now(), 8 * t_small);
}

TEST(PageCache, FlushAllCleansEverything) {
  CacheParams cp;
  cp.capacity_bytes = 1 << 20;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 32 * 4096, PageCache::dense(0));
    co_await fx.cache.flush_all();
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cache.dirty_pages(), 0u);
  EXPECT_EQ(f.disk.stats().bytes_written, 32u * 4096);
  // Sequential flush: one coalesced write.
  EXPECT_EQ(f.disk.stats().writes, 1u);
}

TEST(PageCache, ReadMissBatchesContiguousRuns) {
  CacheParams cp;
  cp.capacity_bytes = 1 << 22;
  cp.page_size = 4096;
  CacheFixture f(cp);
  f.sim.spawn([](CacheFixture& fx) -> sim::Task<void> {
    co_await fx.cache.write(1, 0, 64 * 4096, PageCache::dense(0));
    co_await fx.cache.flush_all();
    fx.cache.drop_all();
    co_await fx.cache.read(1, 0, 64 * 4096, PageCache::dense(64 * 4096));
  }(f));
  f.sim.run();
  EXPECT_EQ(f.disk.stats().reads, 1u);  // one coalesced disk read
  // 64 write-path insertions + 64 read-path misses after the drop.
  EXPECT_EQ(f.cache.stats().misses, 128u);
}

TEST(Node, ServerHasDiskAndCacheClientDoesNot) {
  sim::Simulation sim;
  Cluster cluster(sim, profile_experimental2003());
  const NodeId s = cluster.add_server();
  const NodeId c = cluster.add_client();
  EXPECT_NE(cluster.node(s).disk(), nullptr);
  EXPECT_NE(cluster.node(s).cache(), nullptr);
  EXPECT_EQ(cluster.node(c).disk(), nullptr);
  EXPECT_EQ(cluster.node(c).cache(), nullptr);
}

TEST(Profiles, SaneParameters) {
  const auto exp = profile_experimental2003();
  EXPECT_GT(exp.server.link_bytes_per_sec, 100e6);
  EXPECT_TRUE(exp.server.disk.has_value());
  EXPECT_GT(exp.server.cache->capacity_bytes, 100ull << 20);
  const auto osc = profile_osc2003();
  EXPECT_LT(osc.server.disk->bytes_per_sec, exp.server.disk->bytes_per_sec);
  EXPECT_GT(osc.server.cache->capacity_bytes,
            exp.server.cache->capacity_bytes);
}

}  // namespace
}  // namespace csar::hw
