// The distributed parity-lock protocol (§5.1): serialization of concurrent
// read-modify-writes on one stripe, parity consistency under concurrency,
// deadlock freedom of the ordered acquisition, and the NO-LOCK ablation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::parity_consistent;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

TEST(ParityLock, ConcurrentDisjointWritersKeepParityConsistent) {
  // The paper's Figure 3 setup: N-1 clients each write a distinct block of
  // the same stripe concurrently. With locking, the final parity must be
  // the XOR of all blocks.
  RigParams p;
  p.scheme = Scheme::raid5;
  p.nservers = 6;
  p.nclients = 5;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    sim::WaitGroup wg(r.sim);
    wg.add(5);
    for (std::uint32_t c = 0; c < 5; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        Buffer data = Buffer::pattern(kSu, 100 + client);
        auto wr = co_await rr.client_fs(client).write(
            file, static_cast<std::uint64_t>(client) * kSu, std::move(data));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();
    EXPECT_TRUE(co_await parity_consistent(r, *f, 5 * kSu));
    // Every writer took the same stripe's parity lock exactly once.
    std::uint64_t acq = 0;
    std::uint64_t waits = 0;
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      acq += r.server(s).lock_stats().acquisitions;
      waits += r.server(s).lock_stats().waits;
    }
    EXPECT_EQ(acq, 5u);
    EXPECT_GT(waits, 0u);  // they really did contend
  }(rig));
}

TEST(ParityLock, NoLockLeavesParityInconsistentUnderContention) {
  // The R5 NO LOCK ablation transfers the same bytes but can corrupt the
  // parity when RMWs interleave — exactly the paper's justification for the
  // locking protocol.
  RigParams p;
  p.scheme = Scheme::raid5_nolock;
  p.nservers = 6;
  p.nclients = 5;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    sim::WaitGroup wg(r.sim);
    wg.add(5);
    for (std::uint32_t c = 0; c < 5; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        Buffer data = Buffer::pattern(kSu, 200 + client);
        auto wr = co_await rr.client_fs(client).write(
            file, static_cast<std::uint64_t>(client) * kSu, std::move(data));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();
    // All five clients read the parity (zeros) before anyone wrote it, so
    // each wrote only its own delta: the last write wins and the parity is
    // NOT the XOR of all five blocks. (The data blocks themselves are fine.)
    const bool consistent =
        co_await parity_consistent(r, *f, 5 * kSu, /*report=*/false);
    EXPECT_FALSE(consistent)
        << "NO-LOCK should corrupt parity under this interleaving";
  }(rig));
}

TEST(ParityLock, QueuedReadersWakeFifo) {
  RigParams p;
  p.scheme = Scheme::raid5;
  p.nservers = 4;
  p.nclients = 3;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // Three clients RMW the same block region: fully serialized.
    sim::WaitGroup wg(r.sim);
    wg.add(3);
    std::vector<sim::Time> finish;
    for (std::uint32_t c = 0; c < 3; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done,
                     std::vector<sim::Time>* out) -> sim::Task<void> {
        auto wr = co_await rr.client_fs(client).write(
            file, 100, Buffer::pattern(500, client));
        EXPECT_TRUE(wr.ok());
        out->push_back(rr.sim.now());
        done->done();
      }(r, *f, c, &wg, &finish));
    }
    co_await wg.wait();
    CO_ASSERT_EQ(finish.size(), 3u);
    // Completion times are strictly increasing: serialized, FIFO.
    EXPECT_LT(finish[0], finish[1]);
    EXPECT_LT(finish[1], finish[2]);
    std::uint64_t waits = 0;
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      waits += r.server(s).lock_stats().waits;
    }
    EXPECT_EQ(waits, 2u);  // second and third queued
  }(rig));
}

TEST(ParityLock, TwoPartialStripesAcquireInGroupOrder) {
  // A write spanning two groups without a full stripe takes two parity
  // locks; ordered acquisition avoids deadlock even with many concurrent
  // writers doing the same.
  RigParams p;
  p.scheme = Scheme::raid5;
  p.nservers = 4;
  p.nclients = 8;
  // This test pins the exact live-process count below; lease watchdogs are
  // transient extra processes, so switch them off (they have their own
  // coverage in the fault tests).
  p.parity_lock_lease = 0;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();  // 3 units
    sim::WaitGroup wg(r.sim);
    wg.add(8);
    for (std::uint32_t c = 0; c < 8; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     std::uint64_t width,
                     sim::WaitGroup* done) -> sim::Task<void> {
        // Straddle the group boundary: partial tail of g0 + partial head of
        // g1, no full group. All clients hit the same two parity locks.
        auto wr = co_await rr.client_fs(client).write(
            file, width - 600, Buffer::pattern(1200, client));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, w, &wg));
    }
    co_await wg.wait();  // completing at all proves deadlock freedom
    // Only daemon dispatchers (servers + manager) and this checker remain.
    EXPECT_EQ(r.sim.live_processes(), r.p.nservers + 2u);
  }(rig));
}

TEST(ParityLock, LeaseReclaimsAbandonedLock) {
  // An RMW client that dies (or times out) between read_red and write_red
  // leaves the parity lock held with no owner. Without leases every later
  // writer of the group queues forever; with leases the lock is handed to
  // the first waiter once the lease runs out.
  RigParams p;
  p.scheme = Scheme::raid5;
  p.nservers = 4;
  p.parity_lock_lease = sim::ms(400);
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::pattern(2 * w, 7));
    CO_ASSERT_TRUE(wr.ok());
    // Take group 0's parity lock by hand and abandon it.
    const std::uint32_t ps = f->layout.parity_server(0);
    pvfs::Request lr;
    lr.op = pvfs::Op::read_red;
    lr.handle = f->handle;
    lr.off = f->layout.parity_local_off(0);
    lr.len = kSu;
    lr.su = f->layout.stripe_unit;
    lr.lock = true;
    auto resp = co_await r.client().rpc(ps, std::move(lr));
    CO_ASSERT_TRUE(resp.ok);
    const sim::Time stuck_at = r.sim.now();
    // A partial write into group 0 needs the same parity lock; it queues
    // behind the orphan and completes only after the lease expires.
    auto wr2 = co_await r.client_fs().write(*f, 100, Buffer::pattern(500, 9));
    CO_ASSERT_TRUE(wr2.ok());
    EXPECT_GE(r.sim.now(), stuck_at + sim::ms(400));
    EXPECT_EQ(r.server(ps).lock_stats().lease_expirations, 1u);
  }(rig));
}

TEST(ParityLock, LockStatsQuietForAlignedWrites) {
  RigParams p;
  p.scheme = Scheme::raid5;
  p.nservers = 5;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::pattern(8 * w, 1));
    CO_ASSERT_TRUE(wr.ok());
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      EXPECT_EQ(r.server(s).lock_stats().acquisitions, 0u);
    }
  }(rig));
}

TEST(ParityLock, HybridNeedsNoLocksForPartialWrites) {
  // The reason Hybrid survives high client counts in Figure 6(a): its
  // partial-stripe path writes overflow copies without parity RMW.
  RigParams p;
  p.scheme = Scheme::hybrid;
  p.nservers = 6;
  p.nclients = 5;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    sim::WaitGroup wg(r.sim);
    wg.add(5);
    for (std::uint32_t c = 0; c < 5; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        auto wr = co_await rr.client_fs(client).write(
            file, static_cast<std::uint64_t>(client) * kSu,
            Buffer::pattern(kSu, client));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      EXPECT_EQ(r.server(s).lock_stats().acquisitions, 0u);
    }
  }(rig));
}

TEST(ParityLock, ConcurrentMixedTrafficStaysConsistent) {
  // Stress: several clients writing disjoint regions with mixed sizes; the
  // parity invariant must hold at quiesce for RAID5 with locking.
  RigParams p;
  p.scheme = Scheme::raid5;
  p.nservers = 6;
  p.nclients = 4;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    sim::WaitGroup wg(r.sim);
    wg.add(4);
    // Client c owns the disjoint region [c*4w, (c+1)*4w).
    for (std::uint32_t c = 0; c < 4; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     std::uint64_t width,
                     sim::WaitGroup* done) -> sim::Task<void> {
        Rng rng(500 + client);
        const std::uint64_t base = client * 4 * width;
        for (int i = 0; i < 10; ++i) {
          const std::uint64_t off = base + rng.below(3 * width);
          const std::uint64_t len =
              1 + rng.below(width);  // stays inside the region
          auto wr = co_await rr.client_fs(client).write(
              file, off, Buffer::pattern(len, rng.next()));
          EXPECT_TRUE(wr.ok());
        }
        done->done();
      }(r, *f, c, w, &wg));
    }
    co_await wg.wait();
    EXPECT_TRUE(co_await parity_consistent(r, *f, 16 * w));
  }(rig));
}

}  // namespace
}  // namespace csar::raid
