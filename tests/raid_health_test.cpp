// Health monitoring and failover reads: failure detection latency and the
// read path that transparently switches to degraded mode.
#include "raid/health.hpp"

#include <gtest/gtest.h>

#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme = Scheme::hybrid) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 4;
  return p;
}

TEST(HealthMonitor, AllAliveInitially) {
  Rig rig(rig_params());
  HealthMonitor mon(rig.client());
  mon.start();
  run_sim_void(rig, [](Rig& r, HealthMonitor* m) -> sim::Task<void> {
    co_await r.sim.sleep(sim::sec(2));
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      EXPECT_TRUE(m->is_alive(s));
    }
    EXPECT_FALSE(m->first_failed().has_value());
    EXPECT_GT(m->probes_sent(), 4u);
    EXPECT_EQ(m->transitions(), 0u);
    m->stop();
  }(rig, &mon));
}

TEST(HealthMonitor, DetectsFailureWithinOneInterval) {
  Rig rig(rig_params());
  HealthParams hp;
  hp.interval = sim::ms(100);
  HealthMonitor mon(rig.client(), hp);
  mon.start();
  run_sim_void(rig, [](Rig& r, HealthMonitor* m) -> sim::Task<void> {
    co_await r.sim.sleep(sim::sec(1));
    const sim::Time fail_time = r.sim.now();
    r.server(2).fail();
    co_await r.sim.sleep(sim::ms(300));  // a few probe rounds
    EXPECT_FALSE(m->is_alive(2));
    CO_ASSERT_TRUE(m->first_failed().has_value());
    EXPECT_EQ(*m->first_failed(), 2u);
    // Detection latency bounded by roughly one interval (plus probe RTTs).
    EXPECT_LE(m->status_since(2) - fail_time, sim::ms(150));
    m->stop();
  }(rig, &mon));
}

TEST(HealthMonitor, DetectsRecovery) {
  Rig rig(rig_params());
  HealthParams hp;
  hp.interval = sim::ms(100);
  HealthMonitor mon(rig.client(), hp);
  mon.start();
  run_sim_void(rig, [](Rig& r, HealthMonitor* m) -> sim::Task<void> {
    r.server(1).fail();
    co_await r.sim.sleep(sim::ms(300));
    EXPECT_FALSE(m->is_alive(1));
    r.server(1).recover();
    co_await r.sim.sleep(sim::ms(300));
    EXPECT_TRUE(m->is_alive(1));
    EXPECT_EQ(m->transitions(), 2u);
    m->stop();
  }(rig, &mon));
}

TEST(HealthMonitor, StopStartRestartsPolling) {
  Rig rig(rig_params());
  HealthParams hp;
  hp.interval = sim::ms(100);
  HealthMonitor mon(rig.client(), hp);
  // A stop(); start(); pair — even back-to-back, before the poller has run
  // once — must leave a live poller behind (this used to leave the monitor
  // permanently dead: the old poller saw the stop flag and exited, and the
  // restart never spawned a new one).
  mon.start();
  mon.stop();
  mon.start();
  run_sim_void(rig, [](Rig& r, HealthMonitor* m) -> sim::Task<void> {
    EXPECT_TRUE(m->running());
    co_await r.sim.sleep(sim::sec(1));
    EXPECT_GT(m->probes_sent(), 4u);
    r.server(0).fail();
    co_await r.sim.sleep(sim::ms(300));
    EXPECT_FALSE(m->is_alive(0));  // the restarted poller is really polling
    m->stop();
    EXPECT_FALSE(m->running());
  }(rig, &mon));
}

TEST(HealthMonitor, DetectsSilentCrashViaProbeDeadline) {
  Rig rig(rig_params());
  HealthParams hp;
  hp.interval = sim::ms(100);
  HealthMonitor mon(rig.client(), hp);
  mon.start();
  run_sim_void(rig, [](Rig& r, HealthMonitor* m) -> sim::Task<void> {
    co_await r.sim.sleep(sim::ms(500));
    // crash() never answers (unlike fail(), which replies server_failed).
    // Without the probe deadline the poller would hang on this ping
    // forever and the monitor would never mark anything down.
    r.server(2).crash();
    co_await r.sim.sleep(sim::sec(2));
    EXPECT_FALSE(m->is_alive(2));
    r.server(2).restart(/*wipe_disk=*/false);
    co_await r.sim.sleep(sim::sec(1));
    EXPECT_TRUE(m->is_alive(2));
    m->stop();
  }(rig, &mon));
}

TEST(FailoverRead, TransparentlyReconstructs) {
  for (Scheme scheme : {Scheme::raid1, Scheme::raid5, Scheme::hybrid}) {
    Rig rig(rig_params(scheme));
    run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
      auto& fs = r.client_fs();
      auto f = co_await fs.create("f", r.layout(kSu));
      CO_ASSERT_TRUE(f.ok());
      Buffer data = Buffer::pattern(10 * kSu, 1);
      auto wr = co_await fs.write(*f, 0, data.slice(0, data.size()));
      CO_ASSERT_TRUE(wr.ok());
      // Plain read fails while a server is down; read_resilient does not.
      r.server(1).fail();
      auto plain = co_await fs.read(*f, 0, 10 * kSu);
      EXPECT_FALSE(plain.ok());
      auto resilient = co_await fs.read_resilient(*f, 0, 10 * kSu);
      CO_ASSERT_TRUE(resilient.ok());
      EXPECT_EQ(*resilient, data) << scheme_name(r.p.scheme);
      r.server(1).recover();
      // With everyone healthy it behaves exactly like read().
      auto healthy = co_await fs.read_resilient(*f, 0, 10 * kSu);
      CO_ASSERT_TRUE(healthy.ok());
      EXPECT_EQ(*healthy, data);
    }(rig));
  }
}

TEST(FailoverRead, Raid0StillFails) {
  Rig rig(rig_params(Scheme::raid0));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(10 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    r.server(1).fail();
    auto rd = co_await fs.read_resilient(*f, 0, 10 * kSu);
    EXPECT_FALSE(rd.ok());  // no redundancy to fail over to
  }(rig));
}

TEST(FailoverRead, FindFailedServerLocatesIt) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto none = co_await r.client_fs().find_failed_server(*f);
    EXPECT_FALSE(none.has_value());
    r.server(3).fail();
    auto found = co_await r.client_fs().find_failed_server(*f);
    CO_ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 3u);
  }(rig));
}

}  // namespace
}  // namespace csar::raid
