// Reed-Solomon rs(k,m) as a first-class scheme: the GF(2^8) codec kernel
// (MDS property, SIMD/scalar bit-identity), scheme-spec round-tripping, and
// the end-to-end paths — writes, multi-failure degraded reads and writes,
// double-wipe rebuild, online Hybrid -> rs(4,2) migration and the scrubber.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "hw/disk.hpp"
#include "hw/page_cache.hpp"
#include "pvfs/io_server.hpp"
#include "raid/migrate.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "raid/scrub.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim;
using csar::test::run_sim_void;
using pvfs::IoServer;

constexpr std::uint32_t kSu = 4096;

RigParams rs_rig(Scheme scheme, std::uint32_t nservers = 6) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = nservers;
  return p;
}

// ---------- GF(2^8) field and region kernels ----------

TEST(GfField, InverseAndIdentity) {
  for (std::uint32_t a = 1; a < 256; ++a) {
    const auto ab = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(ab, gf_inv(ab)), 1) << "a=" << a;
    EXPECT_EQ(gf_mul(ab, 1), ab);
    EXPECT_EQ(gf_mul(ab, 0), 0);
  }
}

TEST(GfField, RegionKernelsBitIdenticalToScalar) {
  Rng rng(4242);
  for (const std::size_t len : {std::size_t{1}, std::size_t{31},
                                std::size_t{1000}, std::size_t{4096},
                                std::size_t{4097}}) {
    std::vector<std::byte> src(len), a(len), b(len);
    for (std::size_t i = 0; i < len; ++i) {
      src[i] = static_cast<std::byte>(rng.next());
      a[i] = b[i] = static_cast<std::byte>(rng.next());
    }
    for (const std::uint8_t c : {0, 1, 2, 0x1d, 0x80, 0xff}) {
      std::vector<std::byte> am = a, bm = b;
      gf_muladd_region(am, src, c);
      gf_muladd_region_scalar(bm, src, c);
      EXPECT_EQ(am, bm) << "muladd len=" << len << " c=" << int(c)
                        << " dispatch=" << codec_dispatch_name();
      gf_mul_region(am, src, c);
      gf_mul_region_scalar(bm, src, c);
      EXPECT_EQ(am, bm) << "mul len=" << len << " c=" << int(c);
    }
  }
}

TEST(RsCode, CodingRowZeroIsXorParity) {
  // Column scaling pins generator row 0 to all ones, so RS(k,1) encodes
  // byte-identically to the XOR parity schemes.
  for (std::uint32_t k = 1; k <= 16; ++k) {
    for (std::uint32_t m = 1; m <= 7; ++m) {
      const CodeSpec spec{k, m};
      for (std::uint32_t i = 0; i < k; ++i) {
        EXPECT_EQ(rs_coeff(spec, 0, i), 1) << "k=" << k << " m=" << m;
      }
    }
  }
}

/// Encode `data` (k fragments of `len` bytes) into m coding fragments.
std::vector<std::vector<std::byte>> encode_group(
    CodeSpec spec, const std::vector<std::vector<std::byte>>& data,
    std::size_t len) {
  std::vector<std::vector<std::byte>> coding(spec.m,
                                             std::vector<std::byte>(len));
  for (std::uint32_t j = 0; j < spec.m; ++j) {
    for (std::uint32_t i = 0; i < spec.k; ++i) {
      gf_muladd_region(coding[j], data[i], rs_coeff(spec, j, i));
    }
  }
  return coding;
}

TEST(RsCode, MdsAnyKSubsetRecoversEveryFragment) {
  for (const CodeSpec spec : {CodeSpec{4, 2}, CodeSpec{6, 3}, CodeSpec{2, 2},
                              CodeSpec{1, 1}, CodeSpec{5, 1}}) {
    const std::size_t len = 64;
    Rng rng(1000 + spec.k * 8 + spec.m);
    std::vector<std::vector<std::byte>> frag(spec.fragments(),
                                             std::vector<std::byte>(len));
    for (std::uint32_t i = 0; i < spec.k; ++i) {
      for (auto& b : frag[i]) b = static_cast<std::byte>(rng.next());
    }
    const auto coding = encode_group(
        spec, {frag.begin(), frag.begin() + spec.k}, len);
    for (std::uint32_t j = 0; j < spec.m; ++j) frag[spec.k + j] = coding[j];

    // Every k-subset of the k+m fragments must reconstruct every fragment.
    const std::uint32_t n = spec.fragments();
    std::vector<std::uint32_t> present(spec.k);
    std::vector<bool> pick(n, false);
    std::fill(pick.begin(), pick.begin() + spec.k, true);
    do {
      std::uint32_t w = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (pick[i]) present[w++] = i;
      }
      for (std::uint32_t target = 0; target < n; ++target) {
        const auto coeffs = rs_reconstruct_coeffs(spec, present, target);
        std::vector<std::byte> got(len);
        for (std::uint32_t r = 0; r < spec.k; ++r) {
          gf_muladd_region(got, frag[present[r]], coeffs[r]);
        }
        EXPECT_EQ(got, frag[target])
            << "k=" << spec.k << " m=" << spec.m << " target=" << target;
      }
    } while (std::prev_permutation(pick.begin(), pick.end()));
  }
}

TEST(RsCode, EncodeDeltaMatchesFullRecompute) {
  const CodeSpec spec{4, 2};
  const std::size_t len = 128;
  Rng rng(7);
  std::vector<std::vector<std::byte>> data(spec.k, std::vector<std::byte>(len));
  for (auto& f : data) {
    for (auto& b : f) b = static_cast<std::byte>(rng.next());
  }
  auto coding = encode_group(spec, data, len);

  // Overwrite fragment 2 and apply the delta form: coding[j] ^= g[j][2]*(old^new).
  std::vector<std::byte> neu(len), delta(len);
  for (std::size_t i = 0; i < len; ++i) {
    neu[i] = static_cast<std::byte>(rng.next());
    delta[i] = data[2][i] ^ neu[i];
  }
  std::vector<std::span<std::byte>> regions;
  for (auto& c : coding) regions.emplace_back(c);
  rs_encode_delta(spec, 2, delta, regions);
  data[2] = neu;
  EXPECT_EQ(coding, encode_group(spec, data, len));
}

// ---------- scheme-spec round-tripping ----------

TEST(SchemeSpec, NameTagParseRoundTripAllSchemes) {
  std::vector<Scheme> all = {Scheme::raid0,        Scheme::raid1,
                             Scheme::raid4,        Scheme::raid5,
                             Scheme::raid5_nolock, Scheme::raid5_npc,
                             Scheme::hybrid};
  for (std::uint32_t k = 1; k <= kMaxRsK; ++k) {
    for (std::uint32_t m = 1; m <= kMaxRsM; ++m) {
      all.push_back(Scheme::rs(k, m));
    }
  }
  std::set<std::uint8_t> tags;
  for (const Scheme s : all) {
    const auto parsed = parse_scheme(scheme_name(s));
    ASSERT_TRUE(parsed.has_value()) << scheme_name(s);
    EXPECT_EQ(*parsed, s);
    const std::uint8_t tag = scheme_tag(s);
    EXPECT_NE(tag, pvfs::kSchemeUnset);
    EXPECT_EQ(scheme_from_tag(tag), s);
    EXPECT_TRUE(tags.insert(tag).second)
        << "tag collision at " << scheme_name(s);
  }
}

TEST(SchemeSpec, ParseRejectsMalformedAndOutOfBounds) {
  for (const char* bad :
       {"", "raid6", "rs", "rs()", "rs(4)", "rs(,2)", "rs(4,)", "rs(4,2",
        "rs(4,2))", "rs(0,2)", "rs(17,1)", "rs(4,8)", "rs(4,0)", "rs(a,2)",
        "rs(4,2,1)", "rs(999999999999,2)"}) {
    EXPECT_FALSE(parse_scheme(bad).has_value()) << bad;
  }
  EXPECT_EQ(parse_scheme("RS(4,2)"), Scheme::rs(4, 2));  // case-folded
  EXPECT_EQ(parse_scheme("rs(16,7)"), Scheme::rs(16, 7));
}

TEST(SchemeSpec, ListParserKeepsCommasInsideParens) {
  const auto mix = parse_scheme_list("rs(4,2), raid1 ,hybrid");
  ASSERT_TRUE(mix.has_value());
  ASSERT_EQ(mix->size(), 3u);
  EXPECT_EQ((*mix)[0], Scheme::rs(4, 2));
  EXPECT_EQ((*mix)[1], Scheme::raid1);
  EXPECT_EQ((*mix)[2], Scheme::hybrid);

  const auto one = parse_scheme_list("rs(16,7)");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ((*one)[0], Scheme::rs(16, 7));

  for (const char* bad : {"", "rs(4,2),bogus", "rs(4,", "raid5,,raid1"}) {
    EXPECT_FALSE(parse_scheme_list(bad).has_value()) << bad;
  }
}

TEST(SchemeSpec, ListParserEdgeCases) {
  // Nested parens: the splitter keeps "rs(rs(4,2),2)" whole (balanced), and
  // parse_scheme then rejects the non-numeric k.
  EXPECT_FALSE(parse_scheme_list("rs(rs(4,2),2)").has_value());
  // Unbalanced parens fail even when each shorn element might parse.
  EXPECT_FALSE(parse_scheme_list("rs(4,2").has_value());
  EXPECT_FALSE(parse_scheme_list("rs(4,2))").has_value());
  EXPECT_FALSE(parse_scheme_list(")raid5(").has_value());
  EXPECT_FALSE(parse_scheme_list("rs((4,2)").has_value());
  // Empty items: leading, trailing and doubled commas all reject.
  EXPECT_FALSE(parse_scheme_list(",raid5").has_value());
  EXPECT_FALSE(parse_scheme_list("raid5,").has_value());
  EXPECT_FALSE(parse_scheme_list("raid5,,raid1").has_value());
  EXPECT_FALSE(parse_scheme_list("   ").has_value());
  EXPECT_FALSE(parse_scheme_list(" , ").has_value());
  // Whitespace around elements (spaces and tabs) is tolerated; whitespace
  // inside a spec is not.
  const auto ws = parse_scheme_list("  rs(4,2)\t,\t raid1  ");
  ASSERT_TRUE(ws.has_value());
  ASSERT_EQ(ws->size(), 2u);
  EXPECT_EQ((*ws)[0], Scheme::rs(4, 2));
  EXPECT_EQ((*ws)[1], Scheme::raid1);
  EXPECT_FALSE(parse_scheme_list("rs (4,2)").has_value());
  // Duplicate prefixes: raid5 / raid5_nolock / raid5_npc are distinct
  // spellings, and literal duplicates are allowed list entries.
  const auto dup = parse_scheme_list("raid5,raid5_nolock,raid5_npc,raid5");
  ASSERT_TRUE(dup.has_value());
  ASSERT_EQ(dup->size(), 4u);
  EXPECT_EQ((*dup)[0], Scheme::raid5);
  EXPECT_EQ((*dup)[1], Scheme::raid5_nolock);
  EXPECT_EQ((*dup)[2], Scheme::raid5_npc);
  EXPECT_EQ((*dup)[3], Scheme::raid5);
}

// ---------- end-to-end rs(k,m) on the full stack ----------

/// Verify the rs invariant directly on the servers' disks: every coding
/// fragment equals sum_i g[j][i] * data_unit_i of its group (zero-padded).
sim::Task<bool> rs_consistent(Rig& rig, const pvfs::OpenFile& f,
                              Scheme sch, std::uint64_t file_size,
                              std::uint32_t gen = 0) {
  const auto& lay = f.layout;
  const std::uint64_t su = lay.su();
  const CodeSpec spec{sch.k, sch.m};
  const std::uint64_t ngroups = div_ceil(file_size, lay.rs_group_width(sch.k));
  bool ok = true;
  for (std::uint64_t g = 0; g < ngroups; ++g) {
    std::vector<Buffer> data;
    for (std::uint32_t i = 0; i < spec.k; ++i) {
      auto& ds = rig.server(lay.rs_data_server(g, spec.k, i));
      const std::uint64_t u = g * spec.k + i;
      Buffer unit = co_await ds.fs().peek(IoServer::data_name(f.handle),
                                          lay.local_unit(u) * su, su);
      data.push_back(std::move(unit));
    }
    for (std::uint32_t j = 0; j < spec.m; ++j) {
      auto& cs = rig.server(lay.rs_coding_server(g, spec.k, j));
      Buffer coding = co_await cs.fs().peek(
          IoServer::red_name(f.handle, gen), lay.rs_coding_local_off(g), su);
      Buffer expect = Buffer::real(su);
      for (std::uint32_t i = 0; i < spec.k; ++i) {
        gf_muladd_region(expect.mutable_bytes(), data[i].bytes(),
                         rs_coeff(spec, j, i));
      }
      if (!(coding == expect)) {
        ADD_FAILURE() << "rs coding mismatch group " << g << " j=" << j;
        ok = false;
      }
    }
  }
  co_return ok;
}

TEST(RsEndToEnd, CreateRefusesRigNarrowerThanKPlusM) {
  // rs(6,3) needs 9 distinct servers; on a 6-wide rig create must fail
  // loudly instead of double-placing fragments and voiding the tolerance.
  Rig rig(rs_rig(Scheme::rs(6, 3), 6));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("too-wide", r.layout(kSu));
    CO_ASSERT_TRUE(!f.ok());
  }(rig));
}

TEST(RsEndToEnd, RoundTripAndCodingInvariant) {
  Rig rig(rs_rig(Scheme::rs(4, 2)));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const Scheme sch = Scheme::rs(4, 2);
    const std::uint64_t w = f->layout.rs_group_width(4);
    RefFile ref;
    Rng rng(90210);
    // Full-group writes, then a mix of unaligned and sub-unit RMW writes.
    {
      Buffer data = Buffer::pattern(3 * w, 1);
      ref.write(0, data);
      auto wr = co_await fs.write(*f, 0, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t off = rng.below(3 * w - 1);
      const std::uint64_t len =
          1 + rng.below(std::min<std::uint64_t>(3 * w - off - 1, 2 * w));
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    const bool consistent =
        co_await rs_consistent(r, *f, sch, ref.size());
    EXPECT_TRUE(consistent);
    EXPECT_GT(r.policy().ec_stats().encode_bytes, 0u);
  }(rig));
}

TEST(RsEndToEnd, DegradedReadSurvivesTwoFailures) {
  Rig rig(rs_rig(Scheme::rs(4, 2)));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.rs_group_width(4);
    RefFile ref;
    Rng rng(31337);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    Recovery rec = r.recovery();
    // Every pair of victims: rs(4,2) must serve exact content with any two
    // of its six fragment holders gone.
    for (std::uint32_t a = 0; a < r.p.nservers; ++a) {
      for (std::uint32_t b = a + 1; b < r.p.nservers; ++b) {
        r.server(a).fail();
        r.server(b).fail();
        std::vector<std::uint32_t> down;
        down.push_back(a);
        down.push_back(b);
        auto rd = co_await rec.degraded_read(*f, 0, ref.size(), down);
        CO_ASSERT_TRUE(rd.ok());
        EXPECT_EQ(*rd, ref.expect(0, ref.size()))
            << "victims " << a << "," << b;
        r.server(a).recover();
        r.server(b).recover();
      }
    }
    // The MDS promise in numbers: every decode fetched exactly k fragments.
    const EcStats& e = r.policy().ec_stats();
    EXPECT_GT(e.degraded_reads, 0u);
    EXPECT_EQ(e.fragments_fetched, 4 * (e.degraded_reads + e.rebuild_decodes));
    EXPECT_GT(e.decode_bytes, 0u);
    // A third concurrent failure exceeds m and must be refused, not served.
    r.server(0).fail();
    r.server(1).fail();
    r.server(2).fail();
    std::vector<std::uint32_t> three;
    three.push_back(0);
    three.push_back(1);
    three.push_back(2);
    auto rd3 = co_await rec.degraded_read(*f, 0, ref.size(), three);
    EXPECT_FALSE(rd3.ok());
  }(rig));
}

TEST(RsEndToEnd, DegradedWriteKeepsLiveCodingConsistent) {
  Rig rig(rs_rig(Scheme::rs(4, 2)));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const Scheme sch = Scheme::rs(4, 2);
    const std::uint64_t w = f->layout.rs_group_width(4);
    RefFile ref;
    {
      Buffer data = Buffer::pattern(3 * w, 5);
      ref.write(0, data);
      auto wr = co_await fs.write(*f, 0, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    // Two servers down; a mix of full-group and partial writes must land.
    r.server(1).fail();
    r.server(4).fail();
    Recovery rec = r.recovery();
    std::vector<std::uint32_t> down;
    down.push_back(1);
    down.push_back(4);
    Rng rng(555);
    for (int i = 0; i < 12; ++i) {
      const std::uint64_t off = rng.below(3 * w - 1);
      const std::uint64_t len =
          1 + rng.below(std::min<std::uint64_t>(3 * w - off - 1, w));
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await rec.degraded_write(*f, off, std::move(data), down);
      CO_ASSERT_TRUE(wr.ok());
    }
    // Still readable degraded...
    auto rd = co_await rec.degraded_read(*f, 0, ref.size(), down);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    // ...and after both victims are rebuilt, normal reads and the coding
    // invariant hold again.
    r.server(1).wipe();
    r.server(4).wipe();
    r.server(1).recover();
    r.server(4).recover();
    RebuildOptions opt1;
    opt1.also_down.push_back(4);
    auto rb1 = co_await rec.rebuild_server(*f, 1, ref.size(), opt1);
    CO_ASSERT_TRUE(rb1.ok());
    auto rb2 = co_await rec.rebuild_server(*f, 4, ref.size());
    CO_ASSERT_TRUE(rb2.ok());
    auto rd2 = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd2.ok());
    EXPECT_EQ(*rd2, ref.expect(0, ref.size()));
    const bool consistent =
        co_await rs_consistent(r, *f, sch, ref.size());
    EXPECT_TRUE(consistent);
  }(rig));
}

TEST(RsEndToEnd, RebuildTwoWipedServersFromAnyKSurvivors) {
  Rig rig(rs_rig(Scheme::rs(4, 2)));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.rs_group_width(4);
    RefFile ref;
    Rng rng(2026);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    // Both victims lose their disks at once. Rebuilding the first must
    // decode around the second (still down); then the second rebuilds.
    r.server(2).fail();
    r.server(5).fail();
    r.server(2).wipe();
    r.server(5).wipe();
    r.server(2).recover();
    Recovery rec = r.recovery();
    RebuildOptions opt;
    opt.also_down.push_back(5);
    auto rb1 = co_await rec.rebuild_server(*f, 2, ref.size(), opt);
    CO_ASSERT_TRUE(rb1.ok());
    r.server(5).recover();
    auto rb2 = co_await rec.rebuild_server(*f, 5, ref.size());
    CO_ASSERT_TRUE(rb2.ok());
    EXPECT_GT(r.policy().ec_stats().rebuild_decodes, 0u);

    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    // The rebuilt redundancy carries a fresh double failure of different
    // servers.
    r.server(0).fail();
    r.server(3).fail();
    std::vector<std::uint32_t> down;
    down.push_back(0);
    down.push_back(3);
    auto rd2 = co_await rec.degraded_read(*f, 0, ref.size(), down);
    CO_ASSERT_TRUE(rd2.ok());
    EXPECT_EQ(*rd2, ref.expect(0, ref.size()));
  }(rig));
}

TEST(RsEndToEnd, OnlineHybridToRsMigration) {
  Rig rig(rs_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("hot", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t span = 4 * f->layout.stripe_width();
    RefFile ref;
    Rng rng(88001);
    {
      Buffer data = Buffer::pattern(span, rng.next());
      ref.write(0, data);
      auto wr = co_await r.client_fs().write(*f, 0, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    SchemeMigrator mig(r);
    mig.track("hot", *f, span);
    mig.start();

    bool writer_done = false;
    r.sim.spawn([](Rig& r, pvfs::OpenFile f, std::uint64_t span, RefFile* ref,
                   Rng* rng, bool* done) -> sim::Task<void> {
      for (int i = 0; i < 40; ++i) {
        const std::uint64_t off = rng->below(span - 1);
        const std::uint64_t len =
            1 + rng->below(std::min<std::uint64_t>(span - off - 1, 2 * kSu));
        Buffer data = Buffer::pattern(len, rng->next());
        ref->write(off, data);
        auto wr = co_await r.client_fs().write(f, off, std::move(data));
        EXPECT_TRUE(wr.ok());
        co_await r.sim.sleep(sim::ms(1));
      }
      *done = true;
    }(r, *f, span, &ref, &rng, &writer_done));

    co_await r.sim.sleep(sim::ms(10));
    mig.request(f->handle, Scheme::rs(4, 2));
    while (!writer_done || !mig.idle() ||
           mig.stats().migrations_started == 0) {
      co_await r.sim.sleep(sim::ms(1));
    }
    EXPECT_EQ(mig.stats().migrations_completed, 1u);
    EXPECT_TRUE(mig.stats().ok);
    EXPECT_EQ(r.policy().scheme_of(*f), Scheme::rs(4, 2));
    EXPECT_EQ(r.policy().red_gen_of(*f), 1u);

    // Byte-exact through the flip, and the manager persisted the rs tag.
    auto rd = co_await r.client_fs().read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    auto f2 = co_await r.client().open("hot");
    CO_ASSERT_TRUE(f2.ok());
    EXPECT_EQ(scheme_from_tag(f2->scheme), Scheme::rs(4, 2));
    EXPECT_EQ(f2->red_gen, 1u);

    // The new coding carries a double failure of every victim pair.
    Recovery rec = r.recovery();
    for (std::uint32_t a = 0; a < r.p.nservers; ++a) {
      const std::uint32_t b = (a + 2) % r.p.nservers;
      r.server(a).fail();
      r.server(b).fail();
      std::vector<std::uint32_t> down;
      down.push_back(std::min(a, b));
      down.push_back(std::max(a, b));
      auto drd = co_await rec.degraded_read(*f, 0, ref.size(), down);
      CO_ASSERT_TRUE(drd.ok());
      EXPECT_EQ(*drd, ref.expect(0, ref.size())) << "victims " << a << "," << b;
      r.server(a).recover();
      r.server(b).recover();
    }

    // And the migrated file audits clean under its new scheme.
    Scrubber scrub(r.client(), &r.policy());
    auto rep = co_await scrub.verify(*f, ref.size());
    CO_ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep->clean());

    mig.stop();
  }(rig));
}

TEST(RsEndToEnd, ScrubRepairsUpToMLatentErrorsPerGroup) {
  Rig rig(rs_rig(Scheme::rs(4, 2)));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.rs_group_width(4);
    Buffer data = Buffer::pattern(2 * w, 9);
    auto wr = co_await fs.write(*f, 0, data.slice(0, 2 * w));
    CO_ASSERT_TRUE(wr.ok());
    // Two latent sector errors in group 0: one data unit, one coding
    // fragment — exactly m losses, still decodable. Flush + drop caches so
    // the scrub reads actually hit the planted disk errors.
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      co_await r.server(s).fs().flush();
    }
    r.drop_all_caches();
    auto plant = [&r, &f](std::uint32_t server, const std::string& name,
                          std::uint64_t off, std::uint64_t len) {
      auto& srv = r.server(server);
      const std::uint64_t fid = srv.fs().fid_of(name);
      ASSERT_NE(fid, 0u);
      hw::Disk* disk = r.cluster.node(srv.node_id()).disk();
      disk->plant_media_error(hw::PageCache::page_addr(fid, 0, 1) + off, len);
    };
    plant(f->layout.rs_data_server(0, 4, 1), IoServer::data_name(f->handle),
          0, kSu);
    plant(f->layout.rs_coding_server(0, 4, 0), IoServer::red_name(f->handle),
          0, kSu);
    Scrubber scrub(r.client(), &r.policy());
    auto rep = co_await scrub.repair(*f, 2 * w);
    CO_ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep->media_errors, 2u);
    EXPECT_EQ(rep->repaired, 2u);
    EXPECT_EQ(rep->unrepairable, 0u);
    auto rd = co_await fs.read(*f, 0, 2 * w);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
    // A second pass finds nothing left to fix.
    auto rep2 = co_await scrub.verify(*f, 2 * w);
    CO_ASSERT_TRUE(rep2.ok());
    EXPECT_TRUE(rep2->clean());
  }(rig));
}

}  // namespace
}  // namespace csar::raid
