// Lifecycle chaos test: a long randomized schedule of writes from several
// clients interleaved with failures, degraded I/O, disk replacements,
// rebuilds, compaction and scrub passes — the whole repertoire against one
// reference model. Content must be byte-exact after every step.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "raid/scrub.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

void lifecycle(Scheme scheme, std::uint64_t seed) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 5;
  p.nclients = 3;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r, std::uint64_t sd) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("chaos", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    const std::uint64_t span = 6 * w;
    RefFile ref;
    Rng rng(sd);
    Recovery rec = r.recovery();
    std::optional<std::uint32_t> down;  // currently failed server

    auto verify = [&](const char* what) -> sim::Task<void> {
      if (ref.size() == 0) co_return;
      Result<Buffer> rd = Buffer::real(0);
      if (down.has_value()) {
        rd = co_await rec.degraded_read(*f, 0, ref.size(), *down);
      } else {
        rd = co_await r.client_fs(0).read(*f, 0, ref.size());
      }
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size())) << what;
    };

    for (int step = 0; step < 80; ++step) {
      const double dice = rng.uniform();
      if (dice < 0.55) {
        // Write from a random client (degraded if a server is down).
        const auto client = static_cast<std::uint32_t>(rng.below(3));
        const std::uint64_t off = rng.below(span - 1);
        const std::uint64_t len =
            1 + rng.below(std::min<std::uint64_t>(span - off - 1, 2 * w));
        Buffer data = Buffer::pattern(len, rng.next());
        ref.write(off, data);
        if (down.has_value()) {
          Recovery crec(r.client(client), r.p.scheme);
          auto wr =
              co_await crec.degraded_write(*f, off, std::move(data), *down);
          CO_ASSERT_TRUE(wr.ok());
        } else {
          auto wr = co_await r.client_fs(client).write(*f, off,
                                                       std::move(data));
          CO_ASSERT_TRUE(wr.ok());
        }
      } else if (dice < 0.75) {
        co_await verify("read-verify step");
      } else if (dice < 0.85) {
        if (!down.has_value()) {
          // Fail a random server.
          down = static_cast<std::uint32_t>(rng.below(r.p.nservers));
          r.server(*down).fail();
          co_await verify("right after failure");
        } else {
          // Replace the disk and rebuild.
          r.server(*down).wipe();
          r.server(*down).recover();
          auto rb = co_await rec.rebuild_server(*f, *down, ref.size());
          CO_ASSERT_TRUE(rb.ok());
          down.reset();
          co_await verify("right after rebuild");
        }
      } else if (dice < 0.93) {
        if (!down.has_value() && r.p.scheme == Scheme::hybrid) {
          auto rc = co_await r.client_fs(0).compact(*f, ref.size());
          CO_ASSERT_TRUE(rc.ok());
          co_await verify("after compaction");
          auto usage = co_await r.client_fs(0).storage(*f);
          EXPECT_EQ(usage.overflow_bytes, 0u);
        }
      } else {
        if (!down.has_value()) {
          Scrubber scrub(r.client(0), r.p.scheme);
          auto report = co_await scrub.verify(*f, ref.size());
          CO_ASSERT_TRUE(report.ok());
          EXPECT_TRUE(report->clean()) << "scrub at step " << step;
        }
      }
    }
    // Settle: recover anything still down, rebuild, final full audit.
    if (down.has_value()) {
      r.server(*down).wipe();
      r.server(*down).recover();
      auto rb = co_await rec.rebuild_server(*f, *down, ref.size());
      CO_ASSERT_TRUE(rb.ok());
      down.reset();
    }
    co_await verify("final");
    Scrubber scrub(r.client(0), r.p.scheme);
    auto report = co_await scrub.verify(*f, ref.size());
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    // And the file still tolerates the loss of every server in turn.
    for (std::uint32_t victim = 0; victim < r.p.nservers; ++victim) {
      if (r.p.scheme == Scheme::raid0) break;
      r.server(victim).fail();
      auto rd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size())) << "victim " << victim;
      r.server(victim).recover();
    }
  }(rig, seed));
}

class Lifecycle
    : public ::testing::TestWithParam<std::tuple<Scheme, std::uint64_t>> {};

TEST_P(Lifecycle, ChaosScheduleStaysConsistent) {
  const auto [scheme, seed] = GetParam();
  lifecycle(scheme, seed);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, Lifecycle,
    ::testing::Combine(::testing::Values(Scheme::raid1, Scheme::raid5,
                                         Scheme::raid4, Scheme::hybrid),
                       ::testing::Values(1001u, 1002u, 1003u)),
    [](const auto& info) {
      std::string name = scheme_name(std::get<0>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace csar::raid
