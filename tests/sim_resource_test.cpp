#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace csar::sim {
namespace {

TEST(BandwidthServer, SingleTransferTakesExpectedTime) {
  Simulation sim;
  BandwidthServer link(sim, 100e6);  // 100 MB/s
  Time done = 0;
  sim.spawn([](Simulation& s, BandwidthServer& l, Time& t) -> Task<void> {
    co_await l.transfer(100'000'000);  // 100 MB -> 1 s
    t = s.now();
  }(sim, link, done));
  sim.run();
  EXPECT_EQ(done, sec(1));
  EXPECT_EQ(link.bytes_total(), 100'000'000u);
  EXPECT_EQ(link.ops_total(), 1u);
}

TEST(BandwidthServer, ConcurrentTransfersSerialize) {
  Simulation sim;
  BandwidthServer link(sim, 100e6);
  std::vector<Time> done;
  auto proc = [](Simulation& s, BandwidthServer& l,
                 std::vector<Time>& d) -> Task<void> {
    co_await l.transfer(50'000'000);  // 0.5 s each
    d.push_back(s.now());
  };
  sim.spawn(proc(sim, link, done));
  sim.spawn(proc(sim, link, done));
  sim.spawn(proc(sim, link, done));
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], ms(500));
  EXPECT_EQ(done[1], sec(1));
  EXPECT_EQ(done[2], ms(1500));
  EXPECT_EQ(link.busy_time(), ms(1500));
}

TEST(BandwidthServer, PerOpLatencyCharged) {
  Simulation sim;
  BandwidthServer link(sim, 100e6, us(50));
  Time done = 0;
  sim.spawn([](Simulation& s, BandwidthServer& l, Time& t) -> Task<void> {
    co_await l.transfer(0);  // latency only
    co_await l.transfer(0);
    t = s.now();
  }(sim, link, done));
  sim.run();
  EXPECT_EQ(done, us(100));
}

TEST(BandwidthServer, IdleGapNotCountedBusy) {
  Simulation sim;
  BandwidthServer link(sim, 100e6);
  sim.spawn([](Simulation& s, BandwidthServer& l) -> Task<void> {
    co_await l.transfer(10'000'000);  // 0.1 s
    co_await s.sleep(sec(1));         // idle gap
    co_await l.transfer(10'000'000);  // 0.1 s
  }(sim, link));
  sim.run();
  EXPECT_EQ(link.busy_time(), ms(200));
  EXPECT_EQ(sim.now(), ms(100) + sec(1) + ms(100));
}

TEST(BandwidthServer, PipelinedSaturationReachesLineRate) {
  // Many small transfers from independent processes should sum to exactly
  // bytes/rate total time: work-conserving FIFO.
  Simulation sim;
  BandwidthServer link(sim, 1e9);  // 1 GB/s
  constexpr int kN = 100;
  constexpr std::uint64_t kEach = 1'000'000;  // 1 MB
  auto proc = [](BandwidthServer& l) -> Task<void> {
    co_await l.transfer(kEach);
  };
  for (int i = 0; i < kN; ++i) sim.spawn(proc(link));
  const Time end = sim.run();
  EXPECT_EQ(end, ms(100));  // 100 MB at 1 GB/s
}

TEST(Accumulator, Basics) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  a.add(1.0);
  a.add(3.0);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(BandwidthMeter, ComputesRate) {
  BandwidthMeter m;
  m.start(sec(1));
  m.add_bytes(50'000'000);
  m.stop(sec(2));
  EXPECT_DOUBLE_EQ(m.bytes_per_sec(), 50e6);
}

TEST(BandwidthMeter, EmptyWindowIsZero) {
  BandwidthMeter m;
  m.add_bytes(100);
  EXPECT_EQ(m.bytes_per_sec(), 0.0);
}

TEST(LatencyHistogram, PercentileAndSummary) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(us(10));
  h.add(ms(10));
  EXPECT_EQ(h.summary().count(), 101u);
  EXPECT_LE(h.percentile(0.5), 16384u);  // log2-bucket upper bound of 10us
  EXPECT_GT(h.percentile(1.0), us(100));
}

}  // namespace
}  // namespace csar::sim
