// Batched wire protocol under faults: a dropped Op::batch envelope retries
// as one idempotent unit, and a batched locked parity read that partially
// fails releases every lock it acquired instead of wedging the stripe.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::pvfs {
namespace {

using csar::test::run_sim_void;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::LinkFault;
using fault::MediaFault;

constexpr std::uint32_t kSu = 4096;

std::vector<IoServer*> server_ptrs(raid::Rig& rig) {
  std::vector<IoServer*> out;
  for (auto& s : rig.servers) out.push_back(s.get());
  return out;
}

TEST(FaultBatch, DroppedEnvelopeRetriesAsOneIdempotentUnit) {
  raid::RigParams p;
  p.nservers = 3;
  p.rpc.timeout = sim::ms(25);
  p.rpc.max_attempts = 4;
  p.rpc.backoff = sim::ms(5);
  p.rpc.jitter = 0.0;
  raid::Rig rig(p);
  // Every message between the client and server 1 is lost for the first
  // 40 ms — the envelope (or its combined response) vanishes mid-transfer,
  // then the link heals and a retry of the whole batch must succeed.
  FaultPlan plan;
  LinkFault lf;
  lf.a = rig.client().node_id();
  lf.b = rig.server(1).node_id();
  lf.start = 0;
  lf.end = sim::ms(40);
  lf.drop_p = 1.0;
  plan.links.push_back(lf);
  FaultInjector inj(rig.cluster, rig.fabric, server_ptrs(rig), plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    std::vector<Request> subs;
    Request w;
    w.op = Op::write_data;
    w.handle = 7;
    w.off = 0;
    w.su = kSu;
    w.payload = Buffer::pattern(kSu, 3);
    subs.push_back(std::move(w));
    Request rd;
    rd.op = Op::read_data;
    rd.handle = 7;
    rd.off = 0;
    rd.len = kSu;
    rd.su = kSu;
    subs.push_back(std::move(rd));
    auto rs = co_await r.client().rpc_batch(1, std::move(subs));
    CO_ASSERT_EQ(rs.size(), 2u);
    EXPECT_TRUE(rs[0].ok);
    EXPECT_TRUE(rs[1].ok);
    // Whether the drop ate the request or the response, re-executing the
    // batch is safe (write_data is idempotent) and the read sees the write.
    EXPECT_EQ(rs[1].data, Buffer::pattern(kSu, 3));
    EXPECT_GE(r.client().rpc_stats().retries, 1u);
    EXPECT_GE(r.client().rpc_stats().timeouts, 1u);
    EXPECT_GE(r.server(1).batch_stats().batches, 1u);
  }(rig));
}

TEST(FaultBatch, PartialParityBatchFailureReleasesEveryLock) {
  raid::RigParams p;
  p.scheme = raid::Scheme::raid4;
  p.nservers = 3;
  raid::Rig rig(p);
  // Latent sector error under group 1's parity unit on the (fixed) parity
  // server: a straddling RMW's batched locked read of groups 0+1 will have
  // its group-0 half succeed and its group-1 half fail.
  FaultPlan plan;
  MediaFault mf;
  mf.at = sim::ms(500);
  mf.server = 2;
  mf.file = IoServer::red_name(1);
  mf.off = kSu;
  mf.len = kSu;
  plan.media.push_back(mf);
  FaultInjector inj(rig.cluster, rig.fabric, server_ptrs(rig), plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r, FaultInjector* in) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t width = f->layout.stripe_width();
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(2 * width, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto fl = co_await fs.flush(*f);
    CO_ASSERT_TRUE(fl.ok());
    co_await r.sim.sleep(sim::ms(600));  // past the plant time
    EXPECT_EQ(in->stats().media_planted, 1u);
    r.drop_all_caches();  // parity reads must actually touch the bad sectors

    // Head partial in group 0, tail partial in group 1: one batch acquires
    // both parity locks, then the (merged) read hits the latent error.
    const sim::Time t0 = r.sim.now();
    auto bad =
        co_await fs.write(*f, width - 2 * 1024, Buffer::pattern(4 * 1024, 2));
    EXPECT_FALSE(bad.ok());
    // The abandoning client must release BOTH locks it was granted — the
    // healthy group's as well as the failed one's.
    EXPECT_EQ(r.server(2).lock_stats().explicit_releases, 2u);

    // A write over the healthy group proceeds immediately instead of
    // queueing behind an orphaned lock until the lease reaper fires.
    auto good =
        co_await fs.write(*f, width - 2 * 1024, Buffer::pattern(1024, 3));
    CO_ASSERT_TRUE(good.ok());
    EXPECT_EQ(r.server(2).lock_stats().waits, 0u);
    EXPECT_EQ(r.server(2).lock_stats().lease_expirations, 0u);
    EXPECT_LT(r.sim.now() - t0, sim::ms(900));  // well under the 1 s lease
  }(rig, &inj));
}

}  // namespace
}  // namespace csar::pvfs
