// The message fabric: store-and-forward timing, per-link serialization,
// full-duplex behaviour and header accounting.
#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "hw/node.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"

namespace csar::net {
namespace {

hw::HwProfile flat_profile() {
  // Simple numbers for exact-arithmetic assertions.
  hw::HwProfile p = hw::profile_experimental2003();
  p.server.link_bytes_per_sec = 100e6;
  p.server.link_per_op = 0;
  p.client = p.server;
  p.client.disk.reset();
  p.client.cache.reset();
  p.wire_latency = sim::us(10);
  return p;
}

struct Fx {
  sim::Simulation sim;
  hw::Cluster cluster;
  Fabric fabric;
  hw::NodeId a;
  hw::NodeId b;
  hw::NodeId c;

  Fx()
      : cluster(sim, flat_profile()),
        fabric(cluster),
        a(cluster.add_client()),
        b(cluster.add_client()),
        c(cluster.add_client()) {}
};

TEST(Fabric, StoreAndForwardTiming) {
  Fx f;
  sim::Time done = 0;
  f.sim.spawn([](Fx& fx, sim::Time* t) -> sim::Task<void> {
    // 1 MB at 100 MB/s: 10 ms on tx, 10 us wire, 10 ms on rx (+ header).
    co_await fx.fabric.transfer(fx.a, fx.b, 1'000'000 - Fabric::kHeaderBytes);
    *t = fx.sim.now();
  }(f, &done));
  f.sim.run();
  EXPECT_EQ(done, sim::ms(10) + sim::us(10) + sim::ms(10));
}

TEST(Fabric, HeaderChargedPerMessage) {
  Fx f;
  f.sim.spawn([](Fx& fx) -> sim::Task<void> {
    co_await fx.fabric.transfer(fx.a, fx.b, 0);  // header only
  }(f));
  f.sim.run();
  EXPECT_EQ(f.cluster.node(f.a).tx().bytes_total(), Fabric::kHeaderBytes);
  EXPECT_EQ(f.cluster.node(f.b).rx().bytes_total(), Fabric::kHeaderBytes);
}

TEST(Fabric, SenderTxSerializesConcurrentTransfers) {
  // The client-link bottleneck behind Figure 4(a)'s RAID1 plateau.
  Fx f;
  std::vector<sim::Time> done;
  auto send = [](Fx& fx, hw::NodeId dst,
                 std::vector<sim::Time>* d) -> sim::Task<void> {
    co_await fx.fabric.transfer(fx.a, dst, 1'000'000 - Fabric::kHeaderBytes);
    d->push_back(fx.sim.now());
  };
  f.sim.spawn(send(f, f.b, &done));
  f.sim.spawn(send(f, f.c, &done));
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  // First message: 10ms tx; second waits for tx, so finishes ~10ms later.
  EXPECT_EQ(done[1] - done[0], sim::ms(10));
}

TEST(Fabric, DistinctSendersToDistinctReceiversOverlap) {
  Fx f;
  std::vector<sim::Time> done;
  auto send = [](Fx& fx, hw::NodeId src, hw::NodeId dst,
                 std::vector<sim::Time>* d) -> sim::Task<void> {
    co_await fx.fabric.transfer(src, dst, 1'000'000 - Fabric::kHeaderBytes);
    d->push_back(fx.sim.now());
  };
  f.sim.spawn(send(f, f.a, f.b, &done));
  f.sim.spawn(send(f, f.c, f.a, &done));  // a receives while sending: duplex
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], done[1]);  // fully parallel
}

TEST(Fabric, ReceiverRxSerializesFanIn) {
  Fx f;
  std::vector<sim::Time> done;
  auto send = [](Fx& fx, hw::NodeId src,
                 std::vector<sim::Time>* d) -> sim::Task<void> {
    co_await fx.fabric.transfer(src, fx.b, 1'000'000 - Fabric::kHeaderBytes);
    d->push_back(fx.sim.now());
  };
  f.sim.spawn(send(f, f.a, &done));
  f.sim.spawn(send(f, f.c, &done));
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Both tx links run in parallel, but b's rx serializes the two arrivals.
  EXPECT_EQ(done[1] - done[0], sim::ms(10));
}

TEST(Fabric, PipeliningHidesStoreAndForward) {
  // Back-to-back messages from one sender approach line rate: message k+1's
  // tx overlaps message k's rx.
  Fx f;
  sim::Time done = 0;
  f.sim.spawn([](Fx& fx, sim::Time* t) -> sim::Task<void> {
    sim::WaitGroup wg(fx.sim);
    wg.add(10);
    for (int i = 0; i < 10; ++i) {
      fx.sim.spawn([](Fx& fxx, sim::WaitGroup* g) -> sim::Task<void> {
        co_await fxx.fabric.transfer(fxx.a, fxx.b,
                                     1'000'000 - Fabric::kHeaderBytes);
        g->done();
      }(fx, &wg));
    }
    co_await wg.wait();
    *t = fx.sim.now();
  }(f, &done));
  f.sim.run();
  // 10 MB at 100 MB/s = 100 ms line-rate floor; store-and-forward adds only
  // one extra hop (~10 ms), not one per message.
  EXPECT_LT(done, sim::ms(115));
  EXPECT_GE(done, sim::ms(100));
}

}  // namespace
}  // namespace csar::net
