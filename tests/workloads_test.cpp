// Workload generators: totals, feasibility, and the qualitative bandwidth
// relationships each one exists to exhibit.
#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include "raid/rig.hpp"
#include "workloads/harness.hpp"

namespace csar::wl {
namespace {

using raid::Rig;
using raid::RigParams;
using raid::Scheme;

RigParams rig_params(Scheme scheme, std::uint32_t nclients = 1,
                     std::uint32_t nservers = 6) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = nservers;
  p.nclients = nclients;
  return p;
}

TEST(FullStripeWrite, ReportsRequestedBytes) {
  Rig rig(rig_params(Scheme::raid5));
  MicroParams p;
  p.total_bytes = 32ull << 20;
  auto res = run_on(rig, full_stripe_write(rig, p));
  EXPECT_EQ(res.bytes_written, align_down(p.total_bytes,
                                          4ull * 5 * p.stripe_unit));
  EXPECT_GT(res.write_bw(), 1e6);
}

TEST(FullStripeWrite, HybridMatchesRaid5) {
  double bw[2];
  int i = 0;
  for (Scheme s : {Scheme::raid5, Scheme::hybrid}) {
    Rig rig(rig_params(s));
    MicroParams p;
    p.total_bytes = 32ull << 20;
    bw[i++] = run_on(rig, full_stripe_write(rig, p)).write_bw();
  }
  EXPECT_NEAR(bw[0], bw[1], 0.02 * bw[0]);
}

TEST(SmallBlockWrite, HybridMatchesRaid1AndBeatsRaid5) {
  std::map<Scheme, double> bw;
  for (Scheme s : {Scheme::raid1, Scheme::raid5, Scheme::hybrid}) {
    Rig rig(rig_params(s));
    MicroParams p;
    p.total_bytes = 16ull << 20;
    bw[s] = run_on(rig, small_block_write(rig, p)).write_bw();
  }
  EXPECT_NEAR(bw[Scheme::hybrid], bw[Scheme::raid1],
              0.10 * bw[Scheme::raid1]);
  EXPECT_LT(bw[Scheme::raid5], bw[Scheme::raid1]);
}

TEST(StripeContention, LockingCostsThroughput) {
  // Figure 3's shape: R5 with locking is slower than R5-NO-LOCK, which is
  // slower than RAID0.
  std::map<Scheme, double> bw;
  for (Scheme s : {Scheme::raid0, Scheme::raid5, Scheme::raid5_nolock}) {
    Rig rig(rig_params(s, /*nclients=*/5));
    ContentionParams p;
    bw[s] = run_on(rig, stripe_contention(rig, p)).write_bw();
  }
  EXPECT_LT(bw[Scheme::raid5], bw[Scheme::raid5_nolock]);
  EXPECT_LT(bw[Scheme::raid5_nolock], bw[Scheme::raid0]);
}

TEST(RomioPerf, ReadsSchemeIndependentWritesFavorParity) {
  std::map<Scheme, WorkloadResult> res;
  for (Scheme s : {Scheme::raid0, Scheme::raid1, Scheme::raid5,
                   Scheme::hybrid}) {
    Rig rig(rig_params(s, /*nclients=*/4));
    RomioParams p;
    p.rounds = 4;
    res[s] = run_on(rig, romio_perf(rig, p));
  }
  // Reads: all schemes close to RAID0 ("substantially similar read
  // bandwidth", Figure 5a; Hybrid pays a small overflow-merge cost).
  for (auto& [s, r] : res) {
    EXPECT_NEAR(r.read_bw(), res[Scheme::raid0].read_bw(),
                0.10 * res[Scheme::raid0].read_bw())
        << raid::scheme_name(s);
  }
  // Writes: RAID5/Hybrid beat RAID1 on 4 MB requests (Figure 5b).
  EXPECT_GT(res[Scheme::raid5].write_bw(), res[Scheme::raid1].write_bw());
  EXPECT_GT(res[Scheme::hybrid].write_bw(), res[Scheme::raid1].write_bw());
}

TEST(Btio, TotalsMatchTable2Raid0Column) {
  EXPECT_EQ(btio_total_bytes(BtioClass::A), 419 * MB);
  EXPECT_EQ(btio_total_bytes(BtioClass::B), 1698 * MB);
  EXPECT_EQ(btio_total_bytes(BtioClass::C), 6802 * MB);
}

TEST(Btio, ClassAWritesExpectedVolume) {
  Rig rig(rig_params(Scheme::hybrid, /*nclients=*/4));
  BtioParams p;
  p.cls = BtioClass::A;
  p.nprocs = 4;
  auto res = run_on(rig, btio(rig, p));
  // Chunking may shave a remainder; stay within 1%.
  EXPECT_NEAR(static_cast<double>(res.bytes_written),
              static_cast<double>(419 * MB), 0.01 * 419 * MB);
  EXPECT_GT(res.write_bw(), 1e6);
}

TEST(Btio, OverwritePenalizesRaid5NotHybrid) {
  // §6.5 Figure 6(b): on a cold-cache overwrite, RAID5's partial-stripe
  // pre-reads go to disk and its bandwidth "drops much below" the other
  // schemes; Hybrid (no RMW) keeps most of its initial-write bandwidth.
  BtioParams p;
  p.cls = BtioClass::A;
  p.nprocs = 4;
  std::map<Scheme, double> initial;
  std::map<Scheme, double> rewrite;
  for (Scheme s : {Scheme::raid5, Scheme::hybrid}) {
    Rig fresh(rig_params(s, 4));
    p.overwrite = false;
    initial[s] = run_on(fresh, btio(fresh, p)).write_bw();
    Rig over(rig_params(s, 4));
    p.overwrite = true;
    rewrite[s] = run_on(over, btio(over, p)).write_bw();
  }
  // RAID5 loses significantly on overwrite; Hybrid does not.
  EXPECT_LT(rewrite[Scheme::raid5], 0.8 * initial[Scheme::raid5]);
  EXPECT_GT(rewrite[Scheme::hybrid], 0.85 * initial[Scheme::hybrid]);
  // And in the overwrite case, Hybrid clearly beats RAID5.
  EXPECT_GT(rewrite[Scheme::hybrid], 1.2 * rewrite[Scheme::raid5]);
}

TEST(FlashIo, RunsAtBothScales) {
  for (std::uint32_t procs : {4u, 24u}) {
    Rig rig(rig_params(Scheme::hybrid, procs));
    FlashParams p;
    p.nprocs = procs;
    auto res = run_on(rig, flash_io(rig, p));
    const std::uint64_t expect = procs == 4 ? 45 * MB : 235 * MB;
    EXPECT_NEAR(static_cast<double>(res.bytes_written),
                static_cast<double>(expect), 0.02 * expect);
  }
}

TEST(Cactus, WritesTable2Total) {
  Rig rig(rig_params(Scheme::raid0, 8));
  auto res = run_on(rig, cactus_benchio(rig, CactusParams{}));
  EXPECT_NEAR(static_cast<double>(res.bytes_written),
              static_cast<double>(2949 * MB), 0.01 * 2949 * MB);
}

TEST(HartreeFock, KernelModuleOverheadLevelsSchemes) {
  // §6.6: through the kernel module the four schemes end up within ~5%.
  std::map<Scheme, double> t;
  for (Scheme s : {Scheme::raid0, Scheme::raid1, Scheme::raid5,
                   Scheme::hybrid}) {
    Rig rig(rig_params(s));
    HartreeFockParams p;
    t[s] = sim::to_seconds(run_on(rig, hartree_fock(rig, p)).write_time);
  }
  for (auto& [s, secs] : t) {
    EXPECT_NEAR(secs, t[Scheme::raid0], 0.35 * t[Scheme::raid0])
        << raid::scheme_name(s);
  }
}

}  // namespace
}  // namespace csar::wl
