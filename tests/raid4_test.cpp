// RAID4 (fixed parity server): the placement Swift/RAID implemented and
// found inferior (§3). Correctness here, the performance comparison in
// bench_ablate_raid4.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pvfs/io_server.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "raid/scrub.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;
using pvfs::ParityPlacement;
using pvfs::StripeLayout;

constexpr std::uint32_t kSu = 4096;

RigParams raid4_rig(std::uint32_t nservers = 5) {
  RigParams p;
  p.scheme = Scheme::raid4;
  p.nservers = nservers;
  return p;
}

TEST(Raid4Layout, DataNeverLandsOnParityServer) {
  StripeLayout l{kSu, 5, ParityPlacement::fixed};
  EXPECT_EQ(l.data_servers(), 4u);
  for (std::uint64_t u = 0; u < 100; ++u) {
    EXPECT_LT(l.server_of_unit(u), 4u);
  }
  for (std::uint64_t g = 0; g < 100; ++g) {
    EXPECT_EQ(l.parity_server(g), 4u);
    EXPECT_EQ(l.parity_local_unit(g), g);  // dense in the parity file
  }
}

TEST(Raid4Layout, StripeWidthMatchesRotating) {
  // Both placements protect N-1 data units per group.
  StripeLayout fixed{kSu, 6, ParityPlacement::fixed};
  StripeLayout rot{kSu, 6, ParityPlacement::rotating};
  EXPECT_EQ(fixed.stripe_width(), rot.stripe_width());
}

TEST(Raid4Layout, GroupIsOneLocalRow) {
  // Under fixed placement a group is exactly one unit per data server, all
  // at the same local row — the classic RAID4 geometry.
  StripeLayout l{kSu, 5, ParityPlacement::fixed};
  for (std::uint64_t g = 0; g < 50; ++g) {
    for (std::uint64_t u = g * 4; u < (g + 1) * 4; ++u) {
      EXPECT_EQ(l.group_of_unit(u), g);
      EXPECT_EQ(l.local_unit(u), g);
    }
  }
}

TEST(Raid4, RoundTripAndParityInvariant) {
  Rig rig(raid4_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->layout.placement, ParityPlacement::fixed);
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(4);
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    EXPECT_TRUE(co_await csar::test::parity_consistent(r, *f, ref.size()));
    // The scrubber agrees.
    Scrubber scrub(r.client(), Scheme::raid4);
    auto report = co_await scrub.verify(*f, ref.size());
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
  }(rig));
}

TEST(Raid4, AllParityOnDedicatedServer) {
  Rig rig(raid4_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(8 * w, 1));
    CO_ASSERT_TRUE(wr.ok());
    // Servers 0..3 hold only data, server 4 only parity.
    for (std::uint32_t s = 0; s < 4; ++s) {
      const auto info = r.server(s).total_storage();
      EXPECT_GT(info.data_bytes, 0u) << "server " << s;
      EXPECT_EQ(info.red_bytes, 0u) << "server " << s;
    }
    const auto parity = r.server(4).total_storage();
    EXPECT_EQ(parity.data_bytes, 0u);
    EXPECT_EQ(parity.red_bytes, 8 * kSu);  // one parity unit per group
  }(rig));
}

TEST(Raid4, DegradedReadAndRebuildDataServer) {
  Rig rig(raid4_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(14);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(3 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    Recovery rec = r.recovery();
    // Any data server can fail.
    for (std::uint32_t victim = 0; victim < 4; ++victim) {
      r.server(victim).fail();
      auto rd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size())) << "victim " << victim;
      r.server(victim).recover();
    }
    // Full rebuild of a data server.
    r.server(2).fail();
    r.server(2).wipe();
    r.server(2).recover();
    auto rb = co_await rec.rebuild_server(*f, 2, ref.size());
    CO_ASSERT_TRUE(rb.ok());
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
  }(rig));
}

TEST(Raid4, ParityServerFailureLeavesDataReadable) {
  Rig rig(raid4_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(10 * kSu, 1);
    auto wr = co_await fs.write(*f, 0, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    r.server(4).fail();  // the dedicated parity server
    Recovery rec = r.recovery();
    auto rd = co_await rec.degraded_read(*f, 0, 10 * kSu, 4);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
    // Rebuild restores the parity file.
    r.server(4).wipe();
    r.server(4).recover();
    auto rb = co_await rec.rebuild_server(*f, 4, 10 * kSu);
    CO_ASSERT_TRUE(rb.ok());
    EXPECT_TRUE(co_await csar::test::parity_consistent(r, *f, 10 * kSu));
  }(rig));
}

TEST(Raid4, ConcurrentWritersAllContendOnOneServer) {
  // The RAID4 pathology: every partial-stripe RMW in the whole file system
  // hits the same parity server.
  RigParams p = raid4_rig(5);
  p.nclients = 4;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    sim::WaitGroup wg(r.sim);
    wg.add(4);
    // Each client does partial writes in its own distinct group.
    for (std::uint32_t c = 0; c < 4; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     std::uint64_t width,
                     sim::WaitGroup* done) -> sim::Task<void> {
        for (int i = 0; i < 5; ++i) {
          auto wr = co_await rr.client_fs(client).write(
              file, client * 4 * width + 100, Buffer::pattern(500, i));
          EXPECT_TRUE(wr.ok());
        }
        done->done();
      }(r, *f, c, w, &wg));
    }
    co_await wg.wait();
    // All parity traffic landed on server 4 (and nothing anywhere else).
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(r.server(s).lock_stats().acquisitions, 0u);
    }
    EXPECT_EQ(r.server(4).lock_stats().acquisitions, 20u);
  }(rig));
}

}  // namespace
}  // namespace csar::raid
