#include "common/table.hpp"

#include <gtest/gtest.h>

namespace csar {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"scheme", "MB/s"});
  t.add_row({"RAID0", "100.0"});
  t.add_row({"Hybrid", "73.0"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("RAID0"), std::string::npos);
  EXPECT_NE(s.find("73.0"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "yyyy"});
  t.add_row({"longer", "1"});
  const std::string s = t.to_string();
  // Each line has the same visible width for the first column.
  const auto first_nl = s.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
}

}  // namespace
}  // namespace csar
