// Shared helpers for CSAR system tests: run a Task to completion on a Rig's
// simulation, reference-model content checks, and the RAID5/Hybrid parity
// invariant verifier.
#pragma once

#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "common/buffer.hpp"
#include "pvfs/io_server.hpp"
#include "raid/rig.hpp"

// gtest's ASSERT_* macros issue `return`, which is ill-formed inside a
// coroutine; these variants record the failure and co_return instead.
#define CO_ASSERT_TRUE(x)     \
  do {                        \
    EXPECT_TRUE(x);           \
    if (!(x)) co_return;      \
  } while (0)
#define CO_ASSERT_EQ(a, b)    \
  do {                        \
    EXPECT_EQ(a, b);          \
    if (!((a) == (b))) co_return; \
  } while (0)

namespace csar::test {

/// Run `t` as a process and drive the simulation until it completes.
template <typename T>
T run_sim(raid::Rig& rig, sim::Task<T> t) {
  std::optional<T> out;
  rig.sim.spawn(
      [](sim::Task<T> task, std::optional<T>* o) -> sim::Task<void> {
        o->emplace(co_await std::move(task));
      }(std::move(t), &out));
  rig.sim.run();
  EXPECT_TRUE(out.has_value()) << "task did not complete (deadlock?)";
  return std::move(*out);
}

inline void run_sim_void(raid::Rig& rig, sim::Task<void> t) {
  bool done = false;
  rig.sim.spawn([](sim::Task<void> task, bool* d) -> sim::Task<void> {
    co_await std::move(task);
    *d = true;
  }(std::move(t), &done));
  rig.sim.run();
  EXPECT_TRUE(done) << "task did not complete (deadlock?)";
}

/// Reference model of a file's expected contents, updated alongside writes.
class RefFile {
 public:
  void write(std::uint64_t off, const Buffer& data) {
    if (bytes_.size() < off + data.size()) {
      bytes_.resize(off + data.size(), std::byte{0});
    }
    auto src = data.bytes();
    std::copy(src.begin(), src.end(),
              bytes_.begin() + static_cast<std::ptrdiff_t>(off));
  }

  std::uint64_t size() const { return bytes_.size(); }

  Buffer expect(std::uint64_t off, std::uint64_t len) const {
    Buffer b = Buffer::real(len);
    const std::uint64_t avail =
        off < bytes_.size() ? std::min(len, bytes_.size() - off) : 0;
    if (avail > 0) {
      std::copy(bytes_.begin() + static_cast<std::ptrdiff_t>(off),
                bytes_.begin() + static_cast<std::ptrdiff_t>(off + avail),
                b.mutable_bytes().begin());
    }
    return b;
  }

 private:
  std::vector<std::byte> bytes_;
};

/// Verify the RAID5/Hybrid invariant: for every parity group touching
/// [0, file_size), the parity unit equals the XOR of the group's *data file*
/// units (zero-padded). Holds for RAID5 always, and for Hybrid because
/// partial-stripe writes never touch the data files.
inline sim::Task<bool> parity_consistent(raid::Rig& rig,
                                         const pvfs::OpenFile& f,
                                         std::uint64_t file_size,
                                         bool report = true) {
  const auto& layout = f.layout;
  const std::uint64_t su = layout.su();
  const std::uint64_t ngroups = div_ceil(file_size, layout.stripe_width());
  bool ok = true;
  for (std::uint64_t g = 0; g < ngroups; ++g) {
    auto& pserver = rig.server(layout.parity_server(g));
    Buffer parity = co_await pserver.fs().peek(
        pvfs::IoServer::red_name(f.handle), layout.parity_local_off(g), su);
    Buffer expect = Buffer::real(su);
    for (std::uint64_t u = g * (layout.n() - 1);
         u < (g + 1) * (layout.n() - 1); ++u) {
      auto& dserver = rig.server(layout.server_of_unit(u));
      Buffer unit = co_await dserver.fs().peek(
          pvfs::IoServer::data_name(f.handle), layout.local_unit(u) * su, su);
      expect.xor_with(unit);
    }
    if (!(parity == expect)) {
      if (report) ADD_FAILURE() << "parity mismatch in group " << g;
      ok = false;
    }
  }
  co_return ok;
}

}  // namespace csar::test
