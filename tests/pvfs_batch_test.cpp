// Op::batch wire protocol: in-order execution with per-sub responses,
// server-side merging of adjacent reads, atomic ascending-key lock
// acquisition, owner-checked explicit unlock, rpc_all's redundancy-only
// coalescing, and bit-determinism of the batched RMW path.
#include <gtest/gtest.h>

#include "pvfs/io_server.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::pvfs {
namespace {

using csar::test::run_sim;
using csar::test::run_sim_void;
using raid::Rig;
using raid::RigParams;
using raid::Scheme;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme = Scheme::hybrid,
                     std::uint32_t nclients = 1) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 3;
  p.nclients = nclients;
  return p;
}

/// Direct-RPC fixture: drive a single server through the client's batches.
struct Fx {
  Rig rig;
  explicit Fx(RigParams p = rig_params()) : rig(p) {}

  Request make(Op op, std::uint64_t handle) {
    Request r;
    r.op = op;
    r.handle = handle;
    r.su = kSu;
    return r;
  }
};

TEST(Batch, ExecutesSubsInOrderWithPerSubResponses) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    std::vector<Request> subs;
    Request w1 = f.make(Op::write_data, 7);
    w1.off = 0;
    w1.payload = Buffer::pattern(600, 1);
    subs.push_back(std::move(w1));
    Request w2 = f.make(Op::write_data, 7);
    w2.off = 100;
    w2.payload = Buffer::pattern(300, 2);
    subs.push_back(std::move(w2));
    Request rd = f.make(Op::read_data, 7);
    rd.off = 0;
    rd.len = 600;
    subs.push_back(std::move(rd));

    auto rs = co_await f.rig.client().rpc_batch(0, std::move(subs));
    CO_ASSERT_EQ(rs.size(), 3u);
    for (const auto& r : rs) {
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.server, 0);
    }
    // In-order execution: the second write overlays the first, and the
    // trailing read observes both.
    Buffer expect = Buffer::pattern(600, 1);
    expect.write_at(100, Buffer::pattern(300, 2));
    EXPECT_EQ(rs[2].data, expect);
    EXPECT_EQ(f.rig.server(0).batch_stats().batches, 1u);
    EXPECT_EQ(f.rig.server(0).batch_stats().subs, 3u);
  }(fx));
}

TEST(Batch, SingleSubAndDisabledBatchingDegradeToPlainRpc) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    std::vector<Request> one;
    Request w = f.make(Op::write_data, 7);
    w.off = 0;
    w.payload = Buffer::pattern(kSu, 1);
    one.push_back(std::move(w));
    auto rs = co_await f.rig.client().rpc_batch(0, std::move(one));
    CO_ASSERT_EQ(rs.size(), 1u);
    EXPECT_TRUE(rs[0].ok);
    EXPECT_EQ(f.rig.server(0).batch_stats().batches, 0u);

    // The ablation switch must reproduce the legacy wire traffic exactly:
    // no envelopes, one message per request, same results.
    f.rig.client().set_rpc_batching(false);
    std::vector<Request> two;
    Request a = f.make(Op::read_data, 7);
    a.off = 0;
    a.len = kSu;
    two.push_back(std::move(a));
    Request b = f.make(Op::read_data, 7);
    b.off = 0;
    b.len = 100;
    two.push_back(std::move(b));
    auto rs2 = co_await f.rig.client().rpc_batch(0, std::move(two));
    CO_ASSERT_EQ(rs2.size(), 2u);
    EXPECT_TRUE(rs2[0].ok);
    EXPECT_TRUE(rs2[1].ok);
    EXPECT_EQ(rs2[0].data, Buffer::pattern(kSu, 1));
    EXPECT_EQ(rs2[1].data, Buffer::pattern(100, 1));
    EXPECT_EQ(f.rig.server(0).batch_stats().batches, 0u);
  }(fx));
}

TEST(Batch, AdjacentReadsMergeIntoOneCacheAccess) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    Request w = f.make(Op::write_data, 7);
    w.off = 0;
    w.payload = Buffer::pattern(2 * kSu, 3);
    auto wr = co_await f.rig.client().rpc(0, std::move(w));
    CO_ASSERT_TRUE(wr.ok);
    Request fl = f.make(Op::flush, 7);
    (void)co_await f.rig.client().rpc(0, std::move(fl));
    f.rig.drop_all_caches();

    // Two adjacent raw reads in one batch: served by a single covering
    // page-cache read — one contiguous miss run on the disk — then sliced
    // back into per-sub responses.
    const std::uint64_t runs0 =
        f.rig.server(0).fs().cache().stats().miss_runs;
    std::vector<Request> subs;
    for (int i = 0; i < 2; ++i) {
      Request rd = f.make(Op::read_data_raw, 7);
      rd.off = static_cast<std::uint64_t>(i) * kSu;
      rd.len = kSu;
      subs.push_back(std::move(rd));
    }
    auto rs = co_await f.rig.client().rpc_batch(0, std::move(subs));
    CO_ASSERT_EQ(rs.size(), 2u);
    EXPECT_TRUE(rs[0].ok);
    EXPECT_TRUE(rs[1].ok);
    EXPECT_EQ(rs[0].data, Buffer::pattern(2 * kSu, 3).slice(0, kSu));
    EXPECT_EQ(rs[1].data, Buffer::pattern(2 * kSu, 3).slice(kSu, kSu));
    EXPECT_EQ(f.rig.server(0).batch_stats().merged_reads, 1u);
    EXPECT_EQ(f.rig.server(0).fs().cache().stats().miss_runs, runs0 + 1);

    // Non-adjacent order (descending offsets) must not merge.
    std::vector<Request> rev;
    for (int i = 1; i >= 0; --i) {
      Request rd = f.make(Op::read_data_raw, 7);
      rd.off = static_cast<std::uint64_t>(i) * kSu;
      rd.len = kSu;
      rev.push_back(std::move(rd));
    }
    auto rs2 = co_await f.rig.client().rpc_batch(0, std::move(rev));
    CO_ASSERT_EQ(rs2.size(), 2u);
    EXPECT_EQ(f.rig.server(0).batch_stats().merged_reads, 1u);
  }(fx));
}

TEST(Batch, ContendingBatchesAcquireLocksInAscendingKeyOrder) {
  Fx fx(rig_params(Scheme::hybrid, /*nclients=*/2));
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    // Two clients batch locking reads of the same two parity blocks in
    // OPPOSITE sub order. The server sorts each batch's acquisitions by
    // ascending key before taking any of them, so the inversion cannot
    // deadlock — without that rule this test would hang until the lease.
    auto locker = [](Fx* f, std::uint32_t c,
                     bool forward) -> sim::Task<void> {
      std::vector<Request> subs;
      for (int i = 0; i < 2; ++i) {
        Request rr = f->make(Op::read_red, 11);
        rr.off = static_cast<std::uint64_t>(forward ? i : 1 - i) * kSu;
        rr.len = kSu;
        rr.lock = true;
        subs.push_back(std::move(rr));
      }
      auto rs = co_await f->rig.client(c).rpc_batch(0, std::move(subs));
      for (const auto& r : rs) EXPECT_TRUE(r.ok);
      for (int i = 0; i < 2; ++i) {
        Request wr = f->make(Op::write_red, 11);
        wr.off = static_cast<std::uint64_t>(i) * kSu;
        wr.payload = Buffer::pattern(kSu, 5);
        wr.unlock = true;
        auto resp = co_await f->rig.client(c).rpc(0, std::move(wr));
        EXPECT_TRUE(resp.ok);
      }
    };
    auto h1 = f.rig.sim.spawn(locker(&f, 0, true));
    auto h2 = f.rig.sim.spawn(locker(&f, 1, false));
    co_await h1.join();
    co_await h2.join();
    EXPECT_EQ(f.rig.server(0).lock_stats().acquisitions, 4u);
    EXPECT_GE(f.rig.server(0).lock_stats().waits, 1u);
    EXPECT_EQ(f.rig.server(0).lock_stats().lease_expirations, 0u);
  }(fx));
}

TEST(Batch, UnlockRedHonoursOnlyTheOwner) {
  Fx fx(rig_params(Scheme::hybrid, /*nclients=*/2));
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    Request lk = f.make(Op::read_red, 9);
    lk.off = 0;
    lk.len = kSu;
    lk.lock = true;
    auto held = co_await f.rig.client(0).rpc(0, std::move(lk));
    CO_ASSERT_TRUE(held.ok);
    EXPECT_EQ(f.rig.server(0).lock_stats().acquisitions, 1u);

    // A stranger's unlock is a no-op: only the recorded owner may release.
    Request bogus = f.make(Op::unlock_red, 9);
    bogus.off = 0;
    auto br = co_await f.rig.client(1).rpc(0, std::move(bogus));
    EXPECT_TRUE(br.ok);
    EXPECT_EQ(f.rig.server(0).lock_stats().explicit_releases, 0u);

    // The owner's unlock releases immediately — no parity write, no lease
    // wait — and the next locking read proceeds without queueing.
    const sim::Time t0 = f.rig.sim.now();
    Request mine = f.make(Op::unlock_red, 9);
    mine.off = 0;
    auto mr = co_await f.rig.client(0).rpc(0, std::move(mine));
    EXPECT_TRUE(mr.ok);
    EXPECT_EQ(f.rig.server(0).lock_stats().explicit_releases, 1u);

    Request again = f.make(Op::read_red, 9);
    again.off = 0;
    again.len = kSu;
    again.lock = true;
    auto ar = co_await f.rig.client(1).rpc(0, std::move(again));
    EXPECT_TRUE(ar.ok);
    EXPECT_EQ(f.rig.server(0).lock_stats().acquisitions, 2u);
    EXPECT_EQ(f.rig.server(0).lock_stats().waits, 0u);
    EXPECT_LT(f.rig.sim.now() - t0, sim::ms(100));

    Request done = f.make(Op::unlock_red, 9);
    done.off = 0;
    (void)co_await f.rig.client(1).rpc(0, std::move(done));
    EXPECT_EQ(f.rig.server(0).lock_stats().explicit_releases, 2u);
  }(fx));
}

TEST(Batch, RpcAllCoalescesOnlyRedundancyClassRequests) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    Request seed = f.make(Op::write_data, 7);
    seed.off = 0;
    seed.payload = Buffer::pattern(2 * kSu, 4);
    (void)co_await f.rig.client().rpc(0, std::move(seed));

    // Two redundancy-class reads + two bulk reads, all to server 0: only
    // the redundancy pair may share an envelope — bulk responses must
    // pipeline as their own messages.
    std::vector<std::pair<std::uint32_t, Request>> reqs;
    Request r1 = f.make(Op::read_red, 7);
    r1.off = 0;
    r1.len = kSu;
    reqs.emplace_back(0, std::move(r1));
    Request d1 = f.make(Op::read_data, 7);
    d1.off = 0;
    d1.len = kSu;
    reqs.emplace_back(0, std::move(d1));
    Request r2 = f.make(Op::read_red, 7);
    r2.off = kSu;
    r2.len = kSu;
    reqs.emplace_back(0, std::move(r2));
    Request d2 = f.make(Op::read_data, 7);
    d2.off = kSu;
    d2.len = kSu;
    reqs.emplace_back(0, std::move(d2));
    auto rs = co_await f.rig.client().rpc_all(std::move(reqs));
    CO_ASSERT_EQ(rs.size(), 4u);
    for (const auto& r : rs) EXPECT_TRUE(r.ok);
    // Responses come back in request order regardless of grouping.
    EXPECT_EQ(rs[1].data, Buffer::pattern(2 * kSu, 4).slice(0, kSu));
    EXPECT_EQ(rs[3].data, Buffer::pattern(2 * kSu, 4).slice(kSu, kSu));
    EXPECT_EQ(f.rig.server(0).batch_stats().batches, 1u);
    EXPECT_EQ(f.rig.server(0).batch_stats().subs, 2u);
  }(fx));
}

TEST(Batch, RpcAllWithBatchingOffSendsNoEnvelopes) {
  RigParams p = rig_params();
  p.rpc_batching = false;
  Fx fx(p);
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    std::vector<std::pair<std::uint32_t, Request>> reqs;
    for (int i = 0; i < 2; ++i) {
      Request rr = f.make(Op::read_red, 7);
      rr.off = static_cast<std::uint64_t>(i) * kSu;
      rr.len = kSu;
      reqs.emplace_back(0, std::move(rr));
    }
    auto rs = co_await f.rig.client().rpc_all(std::move(reqs));
    CO_ASSERT_EQ(rs.size(), 2u);
    EXPECT_TRUE(rs[0].ok);
    EXPECT_TRUE(rs[1].ok);
    EXPECT_EQ(f.rig.server(0).batch_stats().batches, 0u);
  }(fx));
}

/// A RAID5 RMW whose head and tail partial groups (0 and 3) share one
/// parity server: the batched lock+read phase really produces envelopes.
sim::Time straddle_end(std::uint64_t* batches) {
  RigParams p = rig_params(Scheme::raid5);
  Rig rig(p);
  const sim::Time end =
      run_sim(rig, [](Rig& r) -> sim::Task<sim::Time> {
        auto f = co_await r.client_fs().create("f", r.layout(kSu));
        if (!f.ok()) co_return sim::Time{0};
        const std::uint64_t width = f->layout.stripe_width();
        for (int i = 0; i < 8; ++i) {
          auto wr = co_await r.client_fs().write(
              *f, width - 2 * 1024,
              Buffer::pattern(2 * width + 4 * 1024,
                              static_cast<std::uint8_t>(i + 1)));
          if (!wr.ok()) co_return sim::Time{0};
        }
        const bool consistent = co_await csar::test::parity_consistent(
            r, *f, 4 * f->layout.stripe_width());
        EXPECT_TRUE(consistent);
        co_return r.sim.now();
      }(rig));
  for (std::uint32_t s = 0; s < rig.p.nservers; ++s) {
    *batches += rig.server(s).batch_stats().batches;
  }
  return end;
}

TEST(Batch, StraddlingRmwIsBitDeterministic) {
  std::uint64_t batches1 = 0;
  std::uint64_t batches2 = 0;
  const sim::Time end1 = straddle_end(&batches1);
  const sim::Time end2 = straddle_end(&batches2);
  EXPECT_GT(end1, sim::Time{0});
  EXPECT_GT(batches1, 0u);  // the batched lock+read phase actually ran
  EXPECT_EQ(end1, end2);
  EXPECT_EQ(batches1, batches2);
}

}  // namespace
}  // namespace csar::pvfs
