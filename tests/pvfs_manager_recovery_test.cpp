// Manager crash tolerance: journal replay rebuilds the file table, a torn
// journal tail truncates cleanly, incarnation fencing rejects cross-crash
// mutations, and migrator reconciliation resolves a crash that landed
// between a scheme flip and its durable persist.
#include <gtest/gtest.h>

#include "localfs/local_fs.hpp"
#include "pvfs/meta_journal.hpp"
#include "raid/migrate.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::pvfs {
namespace {

using csar::test::run_sim_void;

TEST(ManagerRecovery, JournalReplayRestoresFileTable) {
  raid::Rig rig(raid::RigParams{});
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    const auto layout = r.layout(64 * 1024);
    auto a = co_await c.create("a", layout);
    CO_ASSERT_TRUE(a.ok());
    auto b = co_await c.create("b", layout);
    CO_ASSERT_TRUE(b.ok());
    auto bs = co_await c.set_scheme(
        "b", raid::scheme_tag(raid::Scheme::raid1), 1);
    CO_ASSERT_TRUE(bs.ok());
    // A created-then-removed file exercises replay of both record kinds.
    auto tmp = co_await c.create("tmp", layout);
    CO_ASSERT_TRUE(tmp.ok());
    auto rm = co_await c.remove("tmp");
    CO_ASSERT_TRUE(rm.ok());

    r.manager->crash(/*wipe_unsynced=*/false);
    EXPECT_EQ(r.manager->file_count(), 0u);
    co_await r.manager->restart();

    // The replayed table equals the pre-crash one, byte for byte.
    EXPECT_EQ(r.manager->file_count(), 2u);
    auto a2 = co_await c.open("a");
    CO_ASSERT_TRUE(a2.ok());
    EXPECT_EQ(a2->handle, a->handle);
    EXPECT_EQ(a2->scheme, kSchemeUnset);
    EXPECT_EQ(a2->red_gen, 0u);
    auto b2 = co_await c.open("b");
    CO_ASSERT_TRUE(b2.ok());
    EXPECT_EQ(b2->handle, b->handle);
    EXPECT_EQ(b2->scheme, raid::scheme_tag(raid::Scheme::raid1));
    EXPECT_EQ(b2->red_gen, 1u);
    auto gone = co_await c.open("tmp");
    EXPECT_FALSE(gone.ok());
    EXPECT_EQ(gone.error().code, Errc::not_found);

    // Handle allocation resumes past every replayed handle.
    auto fresh = co_await c.create("c", r.layout(64 * 1024));
    CO_ASSERT_TRUE(fresh.ok());
    EXPECT_GT(fresh->handle, a->handle);
    EXPECT_GT(fresh->handle, b->handle);
    EXPECT_GT(fresh->handle, tmp->handle);

    EXPECT_EQ(r.manager->stats().replays, 1u);
    EXPECT_GE(r.manager->stats().replayed_records, 5u);
    EXPECT_EQ(r.manager->incarnation(), 2u);
  }(rig));
}

TEST(ManagerRecovery, RsSchemeTagSurvivesCrashAndReplay) {
  // rs(k,m) persists through the same one-byte tag as the classic schemes
  // (0x80 | (k-1)<<3 | (m-1)); a crash and journal replay must hand back
  // the exact code parameters, not just "some rs".
  raid::Rig rig(raid::RigParams{});
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    const auto layout = r.layout(64 * 1024);
    auto f = co_await c.create("ec", layout);
    CO_ASSERT_TRUE(f.ok());
    auto s1 = co_await c.set_scheme(
        "ec", raid::scheme_tag(raid::Scheme::rs(4, 2)), 1);
    CO_ASSERT_TRUE(s1.ok());
    // A second flip to different parameters: the replay must restore the
    // *latest* tag, and the tag bounds (k=16, m=7) must survive intact.
    auto g = co_await c.create("wide", layout);
    CO_ASSERT_TRUE(g.ok());
    auto s2 = co_await c.set_scheme(
        "wide", raid::scheme_tag(raid::Scheme::rs(16, 7)), 3);
    CO_ASSERT_TRUE(s2.ok());

    r.manager->crash(/*wipe_unsynced=*/false);
    co_await r.manager->restart();

    auto f2 = co_await c.open("ec");
    CO_ASSERT_TRUE(f2.ok());
    EXPECT_EQ(f2->scheme, raid::scheme_tag(raid::Scheme::rs(4, 2)));
    EXPECT_EQ(raid::scheme_from_tag(f2->scheme), raid::Scheme::rs(4, 2));
    EXPECT_EQ(f2->red_gen, 1u);
    auto g2 = co_await c.open("wide");
    CO_ASSERT_TRUE(g2.ok());
    EXPECT_EQ(raid::scheme_from_tag(g2->scheme), raid::Scheme::rs(16, 7));
    EXPECT_EQ(g2->red_gen, 3u);

    // A second crash replays the same state idempotently.
    r.manager->crash(/*wipe_unsynced=*/false);
    co_await r.manager->restart();
    auto f3 = co_await c.open("ec");
    CO_ASSERT_TRUE(f3.ok());
    EXPECT_EQ(raid::scheme_from_tag(f3->scheme), raid::Scheme::rs(4, 2));
  }(rig));
}

TEST(ManagerRecovery, TornJournalTailTruncatedSafely) {
  raid::Rig rig(raid::RigParams{});
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    for (int i = 0; i < 3; ++i) {
      auto f = co_await c.create("f" + std::to_string(i), r.layout(64 * 1024));
      CO_ASSERT_TRUE(f.ok());
    }

    // Corrupt the last bytes of the journal — the torn tail a real crash
    // can leave mid-sector. Replay must keep every record before the tear
    // and drop the rest instead of reviving garbage.
    localfs::LocalFs* mfs = r.manager->meta_fs();
    CO_ASSERT_TRUE(mfs != nullptr);
    const std::uint64_t jsize = mfs->size(MetaJournal::kJournalFile);
    CO_ASSERT_TRUE(jsize > 8);
    co_await mfs->write(MetaJournal::kJournalFile, jsize - 8,
                        Buffer::pattern(8, 0xDEADBEEFu));
    co_await mfs->flush();

    r.manager->crash(/*wipe_unsynced=*/false);
    co_await r.manager->restart();

    auto f0 = co_await c.open("f0");
    EXPECT_TRUE(f0.ok());
    auto f1 = co_await c.open("f1");
    EXPECT_TRUE(f1.ok());
    auto f2 = co_await c.open("f2");
    EXPECT_FALSE(f2.ok());  // its record sat under the tear
    EXPECT_GE(r.manager->journal_stats().truncated_records, 1u);

    // The manager keeps serving (and journaling) past the repair.
    auto f3 = co_await c.create("f3", r.layout(64 * 1024));
    EXPECT_TRUE(f3.ok());
  }(rig));
}

TEST(ManagerRecovery, EpochFencingRejectsStaleSetScheme) {
  raid::Rig rig(raid::RigParams{});
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    auto f = co_await c.create("x", r.layout(64 * 1024));
    CO_ASSERT_TRUE(f.ok());
    EXPECT_EQ(c.manager_epoch(), 1u);

    r.manager->crash(/*wipe_unsynced=*/false);
    co_await r.manager->restart();
    EXPECT_EQ(r.manager->incarnation(), 2u);

    // A mutation fenced to the pre-crash incarnation must not execute.
    auto stale = co_await c.set_scheme(
        "x", raid::scheme_tag(raid::Scheme::raid1), 1,
        /*fence_epoch=*/1);
    EXPECT_FALSE(stale.ok());
    EXPECT_EQ(stale.error().code, Errc::stale_epoch);
    EXPECT_EQ(r.manager->stats().stale_epoch_rejects, 1u);
    auto check = co_await c.open("x");
    CO_ASSERT_TRUE(check.ok());
    EXPECT_EQ(check->red_gen, 0u);  // untouched
    EXPECT_EQ(c.manager_epoch(), 2u);  // the reply taught us the new epoch

    // Re-fenced to the live incarnation, the same mutation goes through.
    auto ok = co_await c.set_scheme(
        "x", raid::scheme_tag(raid::Scheme::raid1), 1,
        c.manager_epoch());
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok->red_gen, 1u);
  }(rig));
}

TEST(ManagerRecovery, SetSchemeRejectsNonMonotonicGeneration) {
  raid::Rig rig(raid::RigParams{});
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    auto f = co_await c.create("y", r.layout(64 * 1024));
    CO_ASSERT_TRUE(f.ok());
    auto up = co_await c.set_scheme(
        "y", raid::scheme_tag(raid::Scheme::raid5), 2);
    CO_ASSERT_TRUE(up.ok());

    // Rolling the generation backwards would resurrect dropped redundancy.
    auto back = co_await c.set_scheme(
        "y", raid::scheme_tag(raid::Scheme::raid1), 1);
    EXPECT_FALSE(back.ok());
    EXPECT_EQ(back.error().code, Errc::stale_generation);
    EXPECT_EQ(r.manager->stats().stale_gen_rejects, 1u);

    // Same generation + same scheme is an idempotent re-persist, not an
    // error (reconciliation relies on this).
    auto same = co_await c.set_scheme(
        "y", raid::scheme_tag(raid::Scheme::raid5), 2);
    EXPECT_TRUE(same.ok());
    EXPECT_EQ(same->red_gen, 2u);
  }(rig));
}

TEST(ManagerRecovery, CrashBetweenFlipAndPersistResolvedByReconciliation) {
  raid::RigParams rp;
  rp.nservers = 4;
  rp.scheme = raid::Scheme::raid0;
  raid::Rig rig(rp);
  raid::MigrateParams mp;
  mp.rpc = pvfs::RpcPolicy{sim::ms(100), 2, sim::ms(10), 0.0};
  // Pace the copy so the manager crash lands mid-migration, after the
  // migrator sampled its fence but before the flip persists.
  mp.rate_cap = 50e6;
  raid::SchemeMigrator mig(rig, mp);
  run_sim_void(rig, [](raid::Rig& r,
                       raid::SchemeMigrator& mig) -> sim::Task<void> {
    auto& fs = r.client_fs();
    const std::uint64_t size = 4 * 1024 * 1024;
    auto f = co_await fs.create("m", r.layout(64 * 1024));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(size, 0xC0FFEE);
    auto wr = co_await fs.write(*f, 0, data);
    CO_ASSERT_TRUE(wr.ok());
    mig.track("m", *f, size);
    mig.start();
    mig.request(f->handle, raid::Scheme::raid1);

    // Crash + replay the manager while the copy is still running: the
    // migrator's fence (incarnation 1) is now stale, so its eventual
    // persist is rejected — the flip lands in memory but never durably.
    co_await r.sim.sleep(sim::ms(1));
    r.manager->crash(/*wipe_unsynced=*/false);
    co_await r.sim.sleep(sim::ms(5));
    co_await r.manager->restart();
    EXPECT_EQ(r.manager->incarnation(), 2u);

    while (!mig.idle()) co_await r.sim.sleep(sim::ms(5));
    EXPECT_EQ(mig.stats().stale_persists, 1u);
    EXPECT_EQ(mig.stats().migrations_failed, 1u);
    // The flip itself stands: generation 1 is complete and live.
    EXPECT_EQ(r.policy().scheme_of(*f), raid::Scheme::raid1);
    EXPECT_EQ(r.policy().red_gen_of(*f), 1u);
    auto before = co_await r.client().open("m");
    CO_ASSERT_TRUE(before.ok());
    EXPECT_EQ(before->red_gen, 0u);  // durable tag still pre-flip

    // Reconciliation re-persists the flip under the new incarnation.
    co_await mig.reconcile();
    EXPECT_EQ(mig.stats().reconcile_resumed, 1u);
    auto after = co_await r.client().open("m");
    CO_ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->scheme, raid::scheme_tag(raid::Scheme::raid1));
    EXPECT_EQ(after->red_gen, 1u);

    // Generation-1 mirrors exist, and the data survived byte-exact.
    bool any_red = false;
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      if (r.server(s).fs().exists(IoServer::red_name(f->handle, 1))) {
        any_red = true;
      }
    }
    EXPECT_TRUE(any_red);
    auto rd = co_await fs.read(*f, 0, size);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_TRUE(*rd == Buffer::pattern(size, 0xC0FFEE));
    mig.stop();  // let the supervisor exit so sim.run() can drain
  }(rig, mig));
}

}  // namespace
}  // namespace csar::pvfs
