// The mounted (kernel-module) access path: write-behind semantics,
// read-after-write coherence, read-ahead, and error reporting at fsync.
#include "kmod/mounted_client.hpp"

#include <gtest/gtest.h>

#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::kmod {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;
using raid::Rig;
using raid::RigParams;
using raid::Scheme;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme = Scheme::hybrid) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 4;
  return p;
}

TEST(MountedClient, WriteReturnsBeforeIoCompletes) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    MountParams mp;
    mp.per_request = sim::us(100);
    MountedClient mount(r, r.client_fs(), *f, mp);
    const sim::Time t0 = r.sim.now();
    auto wr = co_await mount.write(0, Buffer::pattern(64 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    // Only the kernel cost elapsed; the PVFS write is still in flight.
    EXPECT_EQ(r.sim.now() - t0, sim::us(100));
    co_await mount.drain();
    EXPECT_GT(r.sim.now() - t0, sim::us(100));
  }(rig));
}

TEST(MountedClient, WriteBehindWindowBoundsInflight) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    MountParams tight;
    tight.per_request = sim::ns(1);
    tight.write_behind = 1;  // fully synchronous after the first
    MountedClient sync_mount(r, r.client_fs(), *f, tight);
    const sim::Time t0 = r.sim.now();
    for (int i = 0; i < 8; ++i) {
      auto wr = co_await sync_mount.write(
          static_cast<std::uint64_t>(i) * kSu, Buffer::pattern(kSu, i));
      CO_ASSERT_TRUE(wr.ok());
    }
    co_await sync_mount.drain();
    const sim::Duration serial = r.sim.now() - t0;

    auto f2 = co_await r.client_fs().create("f2", r.layout(kSu));
    CO_ASSERT_TRUE(f2.ok());
    MountParams wide = tight;
    wide.write_behind = 8;
    MountedClient async_mount(r, r.client_fs(), *f2, wide);
    const sim::Time t1 = r.sim.now();
    for (int i = 0; i < 8; ++i) {
      auto wr = co_await async_mount.write(
          static_cast<std::uint64_t>(i) * kSu, Buffer::pattern(kSu, i));
      CO_ASSERT_TRUE(wr.ok());
    }
    co_await async_mount.drain();
    const sim::Duration pipelined = r.sim.now() - t1;
    EXPECT_LT(pipelined, serial);  // the window overlaps the writes
  }(rig));
}

TEST(MountedClient, ReadAfterWriteIsCoherent) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    MountedClient mount(r, r.client_fs(), *f);
    Buffer data = Buffer::pattern(3 * kSu, 9);
    auto wr = co_await mount.write(0, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    // The read must observe the still-in-flight write.
    auto rd = co_await mount.read(kSu, kSu);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data.slice(kSu, kSu));
  }(rig));
}

TEST(MountedClient, SequentialReadsHitReadahead) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(64 * kSu, 3);
    auto wr = co_await r.client_fs().write(*f, 0, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    MountParams mp;
    mp.readahead_bytes = 32 * kSu;
    MountedClient mount(r, r.client_fs(), *f, mp);
    for (std::uint64_t off = 0; off < 32 * kSu; off += kSu) {
      auto rd = co_await mount.read(off, kSu);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, data.slice(off, kSu));
    }
    // One fill served the rest.
    EXPECT_EQ(mount.stats().readahead_fills, 1u);
    EXPECT_EQ(mount.stats().readahead_hits, 31u);
  }(rig));
}

TEST(MountedClient, WriteInvalidatesReadahead) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer base = Buffer::pattern(8 * kSu, 1);
    auto seed = co_await r.client_fs().write(*f, 0, base.slice(0, 8 * kSu));
    CO_ASSERT_TRUE(seed.ok());
    MountedClient mount(r, r.client_fs(), *f);
    auto warm = co_await mount.read(0, kSu);  // fills the window
    CO_ASSERT_TRUE(warm.ok());
    Buffer patch = Buffer::pattern(100, 2);
    auto wr = co_await mount.write(kSu, patch.slice(0, 100));
    CO_ASSERT_TRUE(wr.ok());
    auto rd = co_await mount.read(kSu, 100);  // must see the new bytes
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, patch);
  }(rig));
}

TEST(MountedClient, FsyncReportsAsyncWriteErrors) {
  Rig rig(rig_params(Scheme::raid0));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    MountedClient mount(r, r.client_fs(), *f);
    r.server(1).fail();
    auto wr = co_await mount.write(0, Buffer::pattern(8 * kSu, 1));
    EXPECT_TRUE(wr.ok());  // staged fine; failure is asynchronous
    co_await mount.drain();
    EXPECT_TRUE(mount.pending_error());  // the write really did fail
    r.server(1).recover();
    auto sync = co_await mount.fsync();
    EXPECT_FALSE(sync.ok());  // POSIX: the error surfaces at fsync
    EXPECT_FALSE(mount.pending_error());  // and is consumed by it
    auto sync2 = co_await mount.fsync();
    EXPECT_TRUE(sync2.ok());
  }(rig));
}

TEST(MountedClient, FsyncFlushesServers) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    MountedClient mount(r, r.client_fs(), *f);
    auto wr = co_await mount.write(0, Buffer::pattern(64 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto sync = co_await mount.fsync();
    EXPECT_TRUE(sync.ok());
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      EXPECT_EQ(r.server(s).fs().cache().dirty_pages(), 0u);
    }
  }(rig));
}

}  // namespace
}  // namespace csar::kmod
