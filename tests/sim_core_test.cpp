#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <string>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(us(1), 1000u);
  EXPECT_EQ(ms(1), 1000000u);
  EXPECT_EQ(sec(1), 1000000000u);
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_EQ(from_seconds(1.5), 1500000000u);
}

TEST(SimTime, TransferTime) {
  EXPECT_EQ(transfer_time(0, 1e6), 0u);
  EXPECT_EQ(transfer_time(1000000, 1e6), sec(1));
  // Sub-ns transfers round up to 1 ns to guarantee progress.
  EXPECT_EQ(transfer_time(1, 1e12), 1u);
}

TEST(Simulation, StartsAtZeroAndIdles) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulation, SleepAdvancesClock) {
  Simulation sim;
  Time woke = 0;
  sim.spawn([](Simulation& s, Time& w) -> Task<void> {
    co_await s.sleep(ms(5));
    w = s.now();
  }(sim, woke));
  sim.run();
  EXPECT_EQ(woke, ms(5));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulation, ProcessBodyRunsEagerlyUntilFirstSuspend) {
  Simulation sim;
  bool started = false;
  sim.spawn([](Simulation& s, bool& f) -> Task<void> {
    f = true;
    co_await s.sleep(1);
  }(sim, started));
  EXPECT_TRUE(started);  // before run()
  sim.run();
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, Duration d,
                 int id) -> Task<void> {
    co_await s.sleep(d);
    ord.push_back(id);
  };
  sim.spawn(proc(sim, order, ms(3), 3));
  sim.spawn(proc(sim, order, ms(1), 1));
  sim.spawn(proc(sim, order, ms(2), 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, int id) -> Task<void> {
    co_await s.sleep(ms(1));
    ord.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(sim, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NestedTaskAwait) {
  Simulation sim;
  std::vector<std::string> trace;
  auto inner = [](Simulation& s, std::vector<std::string>& t) -> Task<int> {
    t.push_back("inner-start");
    co_await s.sleep(ms(2));
    t.push_back("inner-end");
    co_return 42;
  };
  auto outer = [&inner](Simulation& s,
                        std::vector<std::string>& t) -> Task<void> {
    t.push_back("outer-start");
    const int v = co_await inner(s, t);
    t.push_back("outer-got-" + std::to_string(v));
  };
  sim.spawn(outer(sim, trace));
  sim.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"outer-start", "inner-start",
                                             "inner-end", "outer-got-42"}));
  EXPECT_EQ(sim.now(), ms(2));
}

TEST(Simulation, JoinWaitsForProcess) {
  Simulation sim;
  Time join_time = 0;
  auto worker = [](Simulation& s) -> Task<void> { co_await s.sleep(ms(7)); };
  auto handle = sim.spawn(worker(sim));
  sim.spawn([](Simulation& s, ProcessHandle h, Time& jt) -> Task<void> {
    co_await h.join();
    jt = s.now();
  }(sim, handle, join_time));
  sim.run();
  EXPECT_EQ(join_time, ms(7));
  EXPECT_TRUE(handle.done());
}

TEST(Simulation, JoinOfFinishedProcessIsImmediate) {
  Simulation sim;
  auto handle = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(1);
  }(sim));
  sim.run();
  ASSERT_TRUE(handle.done());
  bool joined = false;
  sim.spawn([](ProcessHandle h, bool& j) -> Task<void> {
    co_await h.join();
    j = true;
  }(handle, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  auto proc = [](Simulation& s, Duration d, int& f) -> Task<void> {
    co_await s.sleep(d);
    ++f;
  };
  sim.spawn(proc(sim, ms(1), fired));
  sim.spawn(proc(sim, ms(10), fired));
  sim.run_until(ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ms(5));
  EXPECT_EQ(sim.live_processes(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, YieldInterleavesSameTime) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, int id) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      ord.push_back(id);
      co_await s.yield();
    }
  };
  sim.spawn(proc(sim, order, 1));
  sim.spawn(proc(sim, order, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
  EXPECT_EQ(sim.now(), 0u);  // yield does not advance time
}

TEST(Simulation, TaskReturnsValueChain) {
  Simulation sim;
  int result = 0;
  auto leaf = [](Simulation& s) -> Task<int> {
    co_await s.sleep(1);
    co_return 10;
  };
  auto mid = [&leaf](Simulation& s) -> Task<int> {
    const int a = co_await leaf(s);
    const int b = co_await leaf(s);
    co_return a + b;
  };
  sim.spawn([](Task<int> t, int& r) -> Task<void> {
    r = co_await std::move(t);
  }(mid(sim), result));
  sim.run();
  EXPECT_EQ(result, 20);
  EXPECT_EQ(sim.now(), 2u);
}

TEST(Simulation, ManyProcessesScale) {
  Simulation sim;
  int done = 0;
  auto proc = [](Simulation& s, int id, int& d) -> Task<void> {
    co_await s.sleep(static_cast<Duration>(id % 97));
    co_await s.sleep(static_cast<Duration>(id % 31));
    ++d;
  };
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) sim.spawn(proc(sim, i, done));
  sim.run();
  EXPECT_EQ(done, kN);
  EXPECT_EQ(sim.live_processes(), 0u);
}


TEST(Simulation, TaskExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  auto thrower = [](Simulation& s) -> Task<int> {
    co_await s.sleep(1);
    throw std::runtime_error("boom");
    co_return 0;  // unreachable
  };
  sim.spawn([](Simulation&, Task<int> t, bool* c) -> Task<void> {
    try {
      (void)co_await std::move(t);
    } catch (const std::runtime_error& e) {
      *c = std::string(e.what()) == "boom";
    }
  }(sim, thrower(sim), &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulation, ExceptionUnwindsNestedAwaits) {
  Simulation sim;
  int cleanup_count = 0;
  struct Guard {
    int* n;
    ~Guard() { ++*n; }
  };
  auto inner = [](Simulation& s) -> Task<void> {
    co_await s.sleep(1);
    throw std::logic_error("deep");
  };
  auto mid = [&inner](Simulation& s, int* n) -> Task<void> {
    Guard g{n};
    co_await inner(s);
  };
  bool caught = false;
  sim.spawn([](Simulation&, Task<void> t, int* n, bool* c) -> Task<void> {
    Guard g{n};
    try {
      co_await std::move(t);
    } catch (const std::logic_error&) {
      *c = true;
    }
  }(sim, mid(sim, &cleanup_count), &cleanup_count, &caught));
  sim.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(cleanup_count, 2);  // both guards ran during unwind
}

TEST(Simulation, UnstartedTaskDestroyedSafely) {
  Simulation sim;
  bool body_ran = false;
  {
    auto t = [](bool* ran) -> Task<void> {
      *ran = true;
      co_return;
    }(&body_ran);
    // Never awaited, never spawned: destroyed lazily.
  }
  EXPECT_FALSE(body_ran);
  sim.run();
}

TEST(Simulation, EventsExecutedCounts) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(1);
    co_await s.sleep(1);
  }(sim));
  sim.run();
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulation, SleepZeroStillYields) {
  // sleep(0) must go through the event queue (fairness), not run inline.
  Simulation sim;
  std::vector<int> order;
  sim.spawn([](Simulation& s, std::vector<int>* o) -> Task<void> {
    o->push_back(1);
    co_await s.sleep(0);
    o->push_back(3);
  }(sim, &order));
  order.push_back(2);  // runs after the eager prologue, before the event
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, SendThenRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  int got = 0;
  ch.send(5);
  sim.spawn([](Channel<int>& c, int& g) -> Task<void> {
    g = co_await c.recv();
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(Channel, RecvBlocksUntilSend) {
  Simulation sim;
  Channel<int> ch(sim);
  Time recv_time = 0;
  sim.spawn([](Simulation& s, Channel<int>& c, Time& t) -> Task<void> {
    (void)co_await c.recv();
    t = s.now();
  }(sim, ch, recv_time));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    co_await s.sleep(ms(3));
    c.send(1);
  }(sim, ch));
  sim.run();
  EXPECT_EQ(recv_time, ms(3));
}

TEST(Channel, FifoAcrossManyMessages) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c, std::vector<int>& g) -> Task<void> {
    for (int i = 0; i < 10; ++i) g.push_back(co_await c.recv());
  }(ch, got));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.sleep(1);
      c.send(i);
    }
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Channel, MultipleReceiversFifo) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto rx = [](Channel<int>& c, std::vector<std::pair<int, int>>& g,
               int id) -> Task<void> {
    const int v = co_await c.recv();
    g.emplace_back(id, v);
  };
  sim.spawn(rx(ch, got, 1));
  sim.spawn(rx(ch, got, 2));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    co_await s.sleep(1);
    c.send(100);
    c.send(200);
  }(sim, ch));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{1, 100}));  // first waiter first
  EXPECT_EQ(got[1], (std::pair<int, int>{2, 200}));
}

TEST(Channel, TryRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(9);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

// --- timer-wheel edge cases ----------------------------------------------
// The wheel levels cover ~1.05 ms / ~268 ms / ~68.7 s; events beyond that
// wait in the overflow heap. These tests pin the determinism contract at
// the seams: level crossings, cascades, the overflow drain, run_until at a
// slot boundary, and cancellation-slot generation reuse.

TEST(TimerWheel, EqualTimestampFifoAcrossLevels) {
  // Eight processes converge on one far-future timestamp, each scheduling
  // its final wake from a different simulated time (so the target event is
  // filed at a different wheel level / cascades a different number of
  // times per process). Execution at the shared timestamp must still be
  // FIFO by schedule order.
  Simulation sim;
  std::vector<int> order;
  const Time target = sec(100);  // beyond the level-2 horizon at t=0
  for (int i = 0; i < 8; ++i) {
    sim.spawn([](Simulation& s, std::vector<int>& ord, Time t,
                 int id) -> Task<void> {
      // Stagger: id 0 schedules from t=0 (overflow), id 7 from 70 s
      // (level 2), so the same target lands via different paths.
      co_await s.sleep(sec(id * 10));
      co_await s.sleep_until(t);
      ord.push_back(id);
    }(sim, order, target, i));
  }
  sim.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.now(), target);
}

TEST(TimerWheel, FarFutureOverflowOrdering) {
  // Events past the 68.7 s wheel horizon park in the overflow heap and
  // must drain back in exact time order, interleaved with near events.
  Simulation sim;
  std::vector<Time> fired;
  for (Time t : {sec(200), us(1), sec(70), sec(500), ms(5)}) {
    sim.spawn([](Simulation& s, std::vector<Time>& f, Time w) -> Task<void> {
      co_await s.sleep_until(w);
      f.push_back(s.now());
    }(sim, fired, t));
  }
  sim.run();
  const std::vector<Time> want = {us(1), ms(5), sec(70), sec(200), sec(500)};
  EXPECT_EQ(fired, want);
  EXPECT_EQ(sim.now(), sec(500));
}

TEST(TimerWheel, RunUntilAtWheelBoundary) {
  // 2^20 ns is exactly the level-0 horizon (256 slots x 4096 ns): events
  // at multiples of it sit at the first slot of a fresh level-0 window.
  // run_until at those boundaries must fire exactly the due events and
  // leave the rest queued for the next call.
  Simulation sim;
  std::vector<Time> fired;
  const Time b = 1u << 20;
  for (Time t : {b, 2 * b, 2 * b + 1, 3 * b}) {
    sim.spawn([](Simulation& s, std::vector<Time>& f, Time w) -> Task<void> {
      co_await s.sleep_until(w);
      f.push_back(s.now());
    }(sim, fired, t));
  }
  sim.run_until(b);
  EXPECT_EQ(fired, std::vector<Time>{b});
  EXPECT_EQ(sim.now(), b);
  sim.run_until(2 * b);
  EXPECT_EQ(fired, (std::vector<Time>{b, 2 * b}));
  sim.run();
  EXPECT_EQ(fired, (std::vector<Time>{b, 2 * b, 2 * b + 1, 3 * b}));
}

namespace {
/// Parks a coroutine and publishes its handle so tests can drive
/// schedule_cancellable_at directly.
struct Park {
  std::coroutine_handle<>* out;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { *out = h; }
  void await_resume() const noexcept {}
};
}  // namespace

TEST(TimerWheel, CancellationGenerationReuse) {
  Simulation sim;
  std::coroutine_handle<> parked;
  int resumed = 0;
  sim.spawn([](std::coroutine_handle<>* out, int* r) -> Task<void> {
    co_await Park{out};
    ++*r;
  }(&parked, &resumed));
  ASSERT_TRUE(parked);

  // Arm and cancel a timer; once its discarded event pops, the pool slot
  // recycles with a bumped generation.
  CancelToken tok1 = sim.schedule_cancellable_at(ms(1), parked);
  EXPECT_TRUE(tok1.armed());
  tok1.cancel();
  sim.run_until(ms(2));
  EXPECT_EQ(resumed, 0);

  // The next claim reuses the slot. Cancelling through the stale token
  // again must NOT kill the new timer.
  CancelToken tok2 = sim.schedule_cancellable_at(ms(5), parked);
  (void)tok2;
  tok1.cancel();  // stale generation: no-op
  sim.run();
  EXPECT_EQ(resumed, 1);
  EXPECT_EQ(sim.now(), ms(5));
}

TEST(Simulation, StaleProcessHandleReadsDone) {
  // Process-state slots recycle immediately on completion; a handle to the
  // finished process keeps reading done() through the generation check,
  // even after a new process takes the slot.
  Simulation sim;
  ProcessHandle h1 = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(ms(1));
  }(sim));
  sim.run();
  EXPECT_TRUE(h1.done());
  ProcessHandle h2 = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(ms(1));
  }(sim));
  EXPECT_TRUE(h1.done());   // stale handle: still done
  EXPECT_FALSE(h2.done());  // new tenant of the slot: not done
  sim.run();
  EXPECT_TRUE(h2.done());
}

TEST(Simulation, MultipleJoinersWakeFifo) {
  // First joiner parks in the inline slot, the rest in the spill vector;
  // wake order must be join order regardless.
  Simulation sim;
  std::vector<int> order;
  ProcessHandle target = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(ms(10));
  }(sim));
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](ProcessHandle t, std::vector<int>& ord,
                 int id) -> Task<void> {
      co_await t.join();
      ord.push_back(id);
    }(target, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Brute-force determinism fuzz: M processes x K sleeps with pseudo-random
// delays spanning every wheel level and the overflow heap, checked against
// a plain (time, seq) min-heap reference model that mirrors the eager-spawn
// / schedule-on-await semantics exactly.
TEST(TimerWheelFuzz, MatchesReferenceHeapOrdering) {
  constexpr int kProcs = 64;
  constexpr int kSleeps = 40;
  Rng rng(20260808);
  // Log-uniform delays: anything from 1 ns to ~137 s.
  std::vector<std::vector<Duration>> delay(kProcs,
                                           std::vector<Duration>(kSleeps));
  for (auto& row : delay) {
    for (auto& d : row) {
      const std::uint32_t shift = static_cast<std::uint32_t>(rng.below(37));
      d = 1 + (rng.next() & ((1ull << shift) - 1));
    }
  }

  // Reference: each scheduled wake is (t, seq); seq increments in schedule
  // order. Spawns run eagerly (first sleep scheduled at spawn), later
  // sleeps are scheduled when the previous wake fires.
  struct RefEv {
    Time t;
    std::uint64_t seq;
    int p;
    int k;
    bool operator>(const RefEv& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };
  std::priority_queue<RefEv, std::vector<RefEv>, std::greater<RefEv>> heap;
  std::uint64_t seq = 0;
  for (int p = 0; p < kProcs; ++p) heap.push({delay[p][0], seq++, p, 0});
  std::vector<std::pair<Time, int>> want;
  while (!heap.empty()) {
    const RefEv ev = heap.top();
    heap.pop();
    want.emplace_back(ev.t, ev.p);
    if (ev.k + 1 < kSleeps) {
      heap.push({ev.t + delay[ev.p][ev.k + 1], seq++, ev.p, ev.k + 1});
    }
  }

  Simulation sim;
  std::vector<std::pair<Time, int>> got;
  for (int p = 0; p < kProcs; ++p) {
    sim.spawn([](Simulation& s, const std::vector<Duration>& ds,
                 std::vector<std::pair<Time, int>>& out,
                 int id) -> Task<void> {
      for (Duration d : ds) {
        co_await s.sleep(d);
        out.emplace_back(s.now(), id);
      }
    }(sim, delay[p], got, p));
  }
  sim.run();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "divergence at event " << i;
  }
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulation, DeadlockLeavesLiveProcesses) {
  Simulation sim;
  Channel<int> ch(sim);
  sim.spawn([](Channel<int>& c) -> Task<void> {
    (void)co_await c.recv();  // never satisfied
  }(ch));
  sim.run();
  EXPECT_EQ(sim.live_processes(), 1u);
}

}  // namespace
}  // namespace csar::sim
