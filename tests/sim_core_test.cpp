#include <gtest/gtest.h>

#include <string>
#include <stdexcept>
#include <vector>

#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace csar::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(us(1), 1000u);
  EXPECT_EQ(ms(1), 1000000u);
  EXPECT_EQ(sec(1), 1000000000u);
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_EQ(from_seconds(1.5), 1500000000u);
}

TEST(SimTime, TransferTime) {
  EXPECT_EQ(transfer_time(0, 1e6), 0u);
  EXPECT_EQ(transfer_time(1000000, 1e6), sec(1));
  // Sub-ns transfers round up to 1 ns to guarantee progress.
  EXPECT_EQ(transfer_time(1, 1e12), 1u);
}

TEST(Simulation, StartsAtZeroAndIdles) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulation, SleepAdvancesClock) {
  Simulation sim;
  Time woke = 0;
  sim.spawn([](Simulation& s, Time& w) -> Task<void> {
    co_await s.sleep(ms(5));
    w = s.now();
  }(sim, woke));
  sim.run();
  EXPECT_EQ(woke, ms(5));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Simulation, ProcessBodyRunsEagerlyUntilFirstSuspend) {
  Simulation sim;
  bool started = false;
  sim.spawn([](Simulation& s, bool& f) -> Task<void> {
    f = true;
    co_await s.sleep(1);
  }(sim, started));
  EXPECT_TRUE(started);  // before run()
  sim.run();
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, Duration d,
                 int id) -> Task<void> {
    co_await s.sleep(d);
    ord.push_back(id);
  };
  sim.spawn(proc(sim, order, ms(3), 3));
  sim.spawn(proc(sim, order, ms(1), 1));
  sim.spawn(proc(sim, order, ms(2), 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, int id) -> Task<void> {
    co_await s.sleep(ms(1));
    ord.push_back(id);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(proc(sim, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, NestedTaskAwait) {
  Simulation sim;
  std::vector<std::string> trace;
  auto inner = [](Simulation& s, std::vector<std::string>& t) -> Task<int> {
    t.push_back("inner-start");
    co_await s.sleep(ms(2));
    t.push_back("inner-end");
    co_return 42;
  };
  auto outer = [&inner](Simulation& s,
                        std::vector<std::string>& t) -> Task<void> {
    t.push_back("outer-start");
    const int v = co_await inner(s, t);
    t.push_back("outer-got-" + std::to_string(v));
  };
  sim.spawn(outer(sim, trace));
  sim.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"outer-start", "inner-start",
                                             "inner-end", "outer-got-42"}));
  EXPECT_EQ(sim.now(), ms(2));
}

TEST(Simulation, JoinWaitsForProcess) {
  Simulation sim;
  Time join_time = 0;
  auto worker = [](Simulation& s) -> Task<void> { co_await s.sleep(ms(7)); };
  auto handle = sim.spawn(worker(sim));
  sim.spawn([](Simulation& s, ProcessHandle h, Time& jt) -> Task<void> {
    co_await h.join();
    jt = s.now();
  }(sim, handle, join_time));
  sim.run();
  EXPECT_EQ(join_time, ms(7));
  EXPECT_TRUE(handle.done());
}

TEST(Simulation, JoinOfFinishedProcessIsImmediate) {
  Simulation sim;
  auto handle = sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(1);
  }(sim));
  sim.run();
  ASSERT_TRUE(handle.done());
  bool joined = false;
  sim.spawn([](ProcessHandle h, bool& j) -> Task<void> {
    co_await h.join();
    j = true;
  }(handle, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  auto proc = [](Simulation& s, Duration d, int& f) -> Task<void> {
    co_await s.sleep(d);
    ++f;
  };
  sim.spawn(proc(sim, ms(1), fired));
  sim.spawn(proc(sim, ms(10), fired));
  sim.run_until(ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ms(5));
  EXPECT_EQ(sim.live_processes(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, YieldInterleavesSameTime) {
  Simulation sim;
  std::vector<int> order;
  auto proc = [](Simulation& s, std::vector<int>& ord, int id) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      ord.push_back(id);
      co_await s.yield();
    }
  };
  sim.spawn(proc(sim, order, 1));
  sim.spawn(proc(sim, order, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
  EXPECT_EQ(sim.now(), 0u);  // yield does not advance time
}

TEST(Simulation, TaskReturnsValueChain) {
  Simulation sim;
  int result = 0;
  auto leaf = [](Simulation& s) -> Task<int> {
    co_await s.sleep(1);
    co_return 10;
  };
  auto mid = [&leaf](Simulation& s) -> Task<int> {
    const int a = co_await leaf(s);
    const int b = co_await leaf(s);
    co_return a + b;
  };
  sim.spawn([](Task<int> t, int& r) -> Task<void> {
    r = co_await std::move(t);
  }(mid(sim), result));
  sim.run();
  EXPECT_EQ(result, 20);
  EXPECT_EQ(sim.now(), 2u);
}

TEST(Simulation, ManyProcessesScale) {
  Simulation sim;
  int done = 0;
  auto proc = [](Simulation& s, int id, int& d) -> Task<void> {
    co_await s.sleep(static_cast<Duration>(id % 97));
    co_await s.sleep(static_cast<Duration>(id % 31));
    ++d;
  };
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) sim.spawn(proc(sim, i, done));
  sim.run();
  EXPECT_EQ(done, kN);
  EXPECT_EQ(sim.live_processes(), 0u);
}


TEST(Simulation, TaskExceptionPropagatesToAwaiter) {
  Simulation sim;
  bool caught = false;
  auto thrower = [](Simulation& s) -> Task<int> {
    co_await s.sleep(1);
    throw std::runtime_error("boom");
    co_return 0;  // unreachable
  };
  sim.spawn([](Simulation&, Task<int> t, bool* c) -> Task<void> {
    try {
      (void)co_await std::move(t);
    } catch (const std::runtime_error& e) {
      *c = std::string(e.what()) == "boom";
    }
  }(sim, thrower(sim), &caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulation, ExceptionUnwindsNestedAwaits) {
  Simulation sim;
  int cleanup_count = 0;
  struct Guard {
    int* n;
    ~Guard() { ++*n; }
  };
  auto inner = [](Simulation& s) -> Task<void> {
    co_await s.sleep(1);
    throw std::logic_error("deep");
  };
  auto mid = [&inner](Simulation& s, int* n) -> Task<void> {
    Guard g{n};
    co_await inner(s);
  };
  bool caught = false;
  sim.spawn([](Simulation&, Task<void> t, int* n, bool* c) -> Task<void> {
    Guard g{n};
    try {
      co_await std::move(t);
    } catch (const std::logic_error&) {
      *c = true;
    }
  }(sim, mid(sim, &cleanup_count), &cleanup_count, &caught));
  sim.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(cleanup_count, 2);  // both guards ran during unwind
}

TEST(Simulation, UnstartedTaskDestroyedSafely) {
  Simulation sim;
  bool body_ran = false;
  {
    auto t = [](bool* ran) -> Task<void> {
      *ran = true;
      co_return;
    }(&body_ran);
    // Never awaited, never spawned: destroyed lazily.
  }
  EXPECT_FALSE(body_ran);
  sim.run();
}

TEST(Simulation, EventsExecutedCounts) {
  Simulation sim;
  sim.spawn([](Simulation& s) -> Task<void> {
    co_await s.sleep(1);
    co_await s.sleep(1);
  }(sim));
  sim.run();
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(Simulation, SleepZeroStillYields) {
  // sleep(0) must go through the event queue (fairness), not run inline.
  Simulation sim;
  std::vector<int> order;
  sim.spawn([](Simulation& s, std::vector<int>* o) -> Task<void> {
    o->push_back(1);
    co_await s.sleep(0);
    o->push_back(3);
  }(sim, &order));
  order.push_back(2);  // runs after the eager prologue, before the event
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, SendThenRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  int got = 0;
  ch.send(5);
  sim.spawn([](Channel<int>& c, int& g) -> Task<void> {
    g = co_await c.recv();
  }(ch, got));
  sim.run();
  EXPECT_EQ(got, 5);
}

TEST(Channel, RecvBlocksUntilSend) {
  Simulation sim;
  Channel<int> ch(sim);
  Time recv_time = 0;
  sim.spawn([](Simulation& s, Channel<int>& c, Time& t) -> Task<void> {
    (void)co_await c.recv();
    t = s.now();
  }(sim, ch, recv_time));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    co_await s.sleep(ms(3));
    c.send(1);
  }(sim, ch));
  sim.run();
  EXPECT_EQ(recv_time, ms(3));
}

TEST(Channel, FifoAcrossManyMessages) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  sim.spawn([](Channel<int>& c, std::vector<int>& g) -> Task<void> {
    for (int i = 0; i < 10; ++i) g.push_back(co_await c.recv());
  }(ch, got));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.sleep(1);
      c.send(i);
    }
  }(sim, ch));
  sim.run();
  EXPECT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Channel, MultipleReceiversFifo) {
  Simulation sim;
  Channel<int> ch(sim);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto rx = [](Channel<int>& c, std::vector<std::pair<int, int>>& g,
               int id) -> Task<void> {
    const int v = co_await c.recv();
    g.emplace_back(id, v);
  };
  sim.spawn(rx(ch, got, 1));
  sim.spawn(rx(ch, got, 2));
  sim.spawn([](Simulation& s, Channel<int>& c) -> Task<void> {
    co_await s.sleep(1);
    c.send(100);
    c.send(200);
  }(sim, ch));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<int, int>{1, 100}));  // first waiter first
  EXPECT_EQ(got[1], (std::pair<int, int>{2, 200}));
}

TEST(Channel, TryRecv) {
  Simulation sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(9);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(Simulation, DeadlockLeavesLiveProcesses) {
  Simulation sim;
  Channel<int> ch(sim);
  sim.spawn([](Channel<int>& c) -> Task<void> {
    (void)co_await c.recv();  // never satisfied
  }(ch));
  sim.run();
  EXPECT_EQ(sim.live_processes(), 1u);
}

}  // namespace
}  // namespace csar::sim
