// End-to-end correctness of every redundancy scheme: write/read round trips
// through the full simulated stack (client -> fabric -> I/O servers ->
// local FS -> page cache -> disk), parity invariants, mirroring placement
// and overflow bookkeeping.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pvfs/io_server.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::parity_consistent;
using csar::test::run_sim;
using csar::test::run_sim_void;
using pvfs::IoServer;
using pvfs::OpenFile;

RigParams small_rig(Scheme scheme, std::uint32_t nservers = 6) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = nservers;
  return p;
}

constexpr std::uint32_t kSu = 4096;  // small stripe unit for fast tests

// ---------- round-trip across all schemes ----------

class SchemeRoundTrip : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeRoundTrip, AlignedFullStripeWrite) {
  Rig rig(small_rig(GetParam()));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    Buffer data = Buffer::pattern(3 * w, 1);
    auto wr = co_await fs.write(*f, 0, data.slice(0, 3 * w));
    CO_ASSERT_TRUE(wr.ok());
    auto rd = co_await fs.read(*f, 0, 3 * w);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
  }(rig));
}

TEST_P(SchemeRoundTrip, UnalignedWrite) {
  Rig rig(small_rig(GetParam()));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    Buffer data = Buffer::pattern(2 * w + 777, 2);
    auto wr = co_await fs.write(*f, 1234, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    auto rd = co_await fs.read(*f, 1234, data.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
  }(rig));
}

TEST_P(SchemeRoundTrip, SmallWriteInsideOneUnit) {
  Rig rig(small_rig(GetParam()));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(100, 3);
    auto wr = co_await fs.write(*f, 50, data.slice(0, 100));
    CO_ASSERT_TRUE(wr.ok());
    auto rd = co_await fs.read(*f, 50, 100);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
  }(rig));
}

TEST_P(SchemeRoundTrip, OverlappingRewritesLatestWins) {
  Rig rig(small_rig(GetParam()));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(99);
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
  }(rig));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeRoundTrip,
                         ::testing::Values(Scheme::raid0, Scheme::raid1,
                                           Scheme::raid5,
                                           Scheme::raid5_nolock,
                                           Scheme::raid5_npc, Scheme::hybrid),
                         [](const auto& info) {
                           std::string name = scheme_name(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// ---------- RAID1 specifics ----------

TEST(Raid1, MirrorLandsOnSuccessorAtSameLocalOffset) {
  Rig rig(small_rig(Scheme::raid1, 4));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(6 * kSu, 5);  // units 0..5
    auto wr = co_await fs.write(*f, 0, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    // Unit u lives on server u%4; its mirror on (u%4+1)%4 in the red file.
    for (std::uint64_t u = 0; u < 6; ++u) {
      const std::uint32_t s = f->layout.server_of_unit(u);
      const std::uint64_t lo = f->layout.local_unit(u) * kSu;
      Buffer primary = co_await r.server(s).fs().peek(
          IoServer::data_name(f->handle), lo, kSu);
      Buffer mirror = co_await r.server((s + 1) % 4).fs().peek(
          IoServer::red_name(f->handle), lo, kSu);
      EXPECT_EQ(primary, mirror) << "unit " << u;
      EXPECT_EQ(primary, data.slice(u * kSu, kSu)) << "unit " << u;
    }
  }(rig));
}

TEST(Raid1, StorageIsExactlyDouble) {
  Rig rig(small_rig(Scheme::raid1));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Rng rng(1);
    std::uint64_t end = 0;
    for (int i = 0; i < 10; ++i) {
      const std::uint64_t off = rng.below(100 * kSu);
      const std::uint64_t len = 1 + rng.below(20 * kSu);
      end = std::max(end, off + len);
      auto wr = co_await fs.write(*f, off, Buffer::pattern(len, rng.next()));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto info = co_await fs.storage(*f);
    EXPECT_EQ(info.red_bytes, info.data_bytes);
    EXPECT_EQ(info.overflow_bytes, 0u);
  }(rig));
}

// ---------- RAID5 specifics ----------

class Raid5Parity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Raid5Parity, InvariantHoldsAfterRandomWrites) {
  // After any single-client write sequence, every group's parity unit must
  // equal the XOR of its data units.
  Rig rig(small_rig(Scheme::raid5, GetParam()));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    Rng rng(7 + r.p.nservers);
    std::uint64_t size = 0;
    for (int i = 0; i < 30; ++i) {
      const std::uint64_t off = rng.below(5 * w);
      const std::uint64_t len = 1 + rng.below(3 * w);
      size = std::max(size, off + len);
      auto wr = co_await fs.write(*f, off, Buffer::pattern(len, rng.next()));
      CO_ASSERT_TRUE(wr.ok());
    }
    EXPECT_TRUE(co_await parity_consistent(r, *f, size));
  }(rig));
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, Raid5Parity,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Raid5, StorageOverheadIsOneOverNMinus1) {
  Rig rig(small_rig(Scheme::raid5, 6));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(20 * w, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto info = co_await fs.storage(*f);
    EXPECT_EQ(info.data_bytes, 20 * w);
    // 20 groups of 5 data units -> 20 parity units: exactly 1/5 overhead
    // (the paper's Table 2 ratio with 6 servers).
    EXPECT_EQ(info.red_bytes, 20 * kSu);
    EXPECT_EQ(info.overflow_bytes, 0u);
  }(rig));
}

TEST(Raid5, PartialWriteLocksAreAcquiredAndReleased) {
  Rig rig(small_rig(Scheme::raid5, 4));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // Partial write: one group, columns inside one unit.
    auto wr = co_await fs.write(*f, 100, Buffer::pattern(500, 1));
    CO_ASSERT_TRUE(wr.ok());
    std::uint64_t acquisitions = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
      acquisitions += r.server(s).lock_stats().acquisitions;
    }
    EXPECT_EQ(acquisitions, 1u);  // exactly one parity lock round trip
  }(rig));
}

TEST(Raid5, NoLockVariantNeverLocks) {
  Rig rig(small_rig(Scheme::raid5_nolock, 4));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await fs.write(*f, 100, Buffer::pattern(500, 1));
    CO_ASSERT_TRUE(wr.ok());
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(r.server(s).lock_stats().acquisitions, 0u);
    }
  }(rig));
}

TEST(Raid5, TwoServerDegeneratesToRotatedMirror) {
  // With N=2 the parity of a one-unit group is a copy of that unit.
  Rig rig(small_rig(Scheme::raid5, 2));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(kSu, 9);
    auto wr = co_await fs.write(*f, 0, data.slice(0, kSu));
    CO_ASSERT_TRUE(wr.ok());
    Buffer parity = co_await r.server(1).fs().peek(
        IoServer::red_name(f->handle), 0, kSu);
    EXPECT_EQ(parity, data);
  }(rig));
}

// ---------- Hybrid specifics ----------

TEST(Hybrid, FullStripeWritesProduceNoOverflow) {
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(10 * w, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto info = co_await fs.storage(*f);
    EXPECT_EQ(info.overflow_bytes, 0u);
    EXPECT_EQ(info.red_bytes, 10 * kSu);  // one parity unit per group
    EXPECT_EQ(info.data_bytes, 10 * w);
  }(rig));
}

TEST(Hybrid, PartialWritesGoToOverflowMirrored) {
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // A small write inside one unit: two overflow allocations (primary +
    // mirror), each a whole stripe unit.
    auto wr = co_await fs.write(*f, 100, Buffer::pattern(500, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto info = co_await fs.storage(*f);
    EXPECT_EQ(info.overflow_bytes, 2u * kSu);
    EXPECT_EQ(info.data_bytes, 0u);  // data file untouched by partials
  }(rig));
}

TEST(Hybrid, FullStripeInvalidatesOverflow) {
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    // Partial write into group 0, then a full-stripe write over it.
    auto w1 = co_await fs.write(*f, 100, Buffer::pattern(500, 1));
    CO_ASSERT_TRUE(w1.ok());
    Buffer full = Buffer::pattern(w, 2);
    auto w2 = co_await fs.write(*f, 0, full.slice(0, w));
    CO_ASSERT_TRUE(w2.ok());
    // The full stripe wins; its content must come from the data file.
    auto rd = co_await fs.read(*f, 0, w);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, full);
    // And the parity invariant holds (data file + parity are the base).
    EXPECT_TRUE(co_await parity_consistent(r, *f, w));
  }(rig));
}

TEST(Hybrid, PartialThenReadMergesNewestCopy) {
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    Buffer base = Buffer::pattern(w, 1);
    auto w1 = co_await fs.write(*f, 0, base.slice(0, w));  // full stripe
    CO_ASSERT_TRUE(w1.ok());
    Buffer patch = Buffer::pattern(600, 2);
    auto w2 = co_await fs.write(*f, 300, patch.slice(0, 600));  // partial
    CO_ASSERT_TRUE(w2.ok());
    auto rd = co_await fs.read(*f, 0, w);
    CO_ASSERT_TRUE(rd.ok());
    Buffer expect = base.slice(0, w);
    expect.write_at(300, patch);
    EXPECT_EQ(*rd, expect);
    // The data file still holds the *old* base content — partial writes
    // must not update in place (§4).
    Buffer unit0 = co_await r.server(0).fs().peek(
        IoServer::data_name(f->handle), 0, kSu);
    EXPECT_EQ(unit0, base.slice(0, kSu));
    // Parity is consistent with the base, not the overlay.
    EXPECT_TRUE(co_await parity_consistent(r, *f, w));
  }(rig));
}

TEST(Hybrid, BaseParityInvariantSurvivesRandomWorkload) {
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(4242);
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t off = rng.below(6 * w);
      const std::uint64_t len = 1 + rng.below(3 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    // Reads see the merged newest content...
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    // ...while parity remains consistent with the base data files.
    EXPECT_TRUE(co_await parity_consistent(r, *f, ref.size()));
  }(rig));
}

TEST(Hybrid, StorageBetweenRaid5AndAboveForSmallWrites) {
  // Small-write-dominated workloads at a large stripe unit can exceed RAID1
  // storage (the paper's FLASH @64K row in Table 2).
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // 100 tiny writes, each to a fresh unit-sized slot: every write
    // allocates 2 whole units of overflow.
    for (int i = 0; i < 100; ++i) {
      auto wr = co_await fs.write(*f, static_cast<std::uint64_t>(i) * kSu,
                                  Buffer::pattern(128, i));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto info = co_await fs.storage(*f);
    EXPECT_EQ(info.overflow_bytes, 200u * kSu);  // 2 units per tiny write
    const std::uint64_t logical = 99 * kSu + 128;
    // Worse than RAID1's 2x of the logical size: the Table 2 FLASH@64K case.
    EXPECT_GT(info.overflow_bytes, 2 * logical);
  }(rig));
}

TEST(Hybrid, RepeatedPartialWritesFragmentOverflow) {
  // Overflow space is never updated in place: rewriting the same block
  // keeps allocating (§6.7's cleaner discussion).
  Rig rig(small_rig(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    for (int i = 0; i < 10; ++i) {
      auto wr = co_await fs.write(*f, 0, Buffer::pattern(100, i));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto info = co_await fs.storage(*f);
    EXPECT_EQ(info.overflow_bytes, 20u * kSu);
    // But reads still return only the newest copy.
    auto rd = co_await fs.read(*f, 0, 100);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, Buffer::pattern(100, 9));
  }(rig));
}


// Property: splitting one logical write into arbitrary chunks must produce
// identical file content AND identical redundancy state invariants —
// write decomposition cannot depend on request framing.
class ChunkingEquivalence : public ::testing::TestWithParam<Scheme> {};

TEST_P(ChunkingEquivalence, ChunkedWritesMatchOneBigWrite) {
  const std::uint64_t total = 3 * 5 * kSu + 777;  // ~3 stripes + remainder
  Buffer data = Buffer::pattern(total, 99);

  auto run = [&](const std::vector<std::uint64_t>& cuts) {
    Rig rig(small_rig(GetParam()));
    return csar::test::run_sim(
        rig, [](Rig& r, const Buffer* d,
                const std::vector<std::uint64_t>* cs) -> sim::Task<Buffer> {
          auto f = co_await r.client_fs().create("f", r.layout(kSu));
          EXPECT_TRUE(f.ok());
          std::uint64_t pos = 0;
          for (std::uint64_t cut : *cs) {
            auto wr = co_await r.client_fs().write(
                *f, pos, d->slice(pos, cut - pos));
            EXPECT_TRUE(wr.ok());
            pos = cut;
          }
          auto wr = co_await r.client_fs().write(
              *f, pos, d->slice(pos, d->size() - pos));
          EXPECT_TRUE(wr.ok());
          auto rd = co_await r.client_fs().read(*f, 0, d->size());
          EXPECT_TRUE(rd.ok());
          if (csar::raid::uses_parity(r.p.scheme)) {
            EXPECT_TRUE(
                co_await csar::test::parity_consistent(r, *f, d->size()));
          }
          co_return rd.ok() ? std::move(rd.value()) : Buffer{};
        }(rig, &data, &cuts));
  };

  const Buffer whole = run({});
  EXPECT_EQ(whole, data);
  // A few adversarial splits: stripe-aligned, unit-aligned, odd primes.
  for (const auto& cuts :
       std::vector<std::vector<std::uint64_t>>{
           {5 * kSu, 10 * kSu},
           {kSu, 2 * kSu, 3 * kSu, 11 * kSu},
           {101, 4099, 50021},
           {total / 2}}) {
    EXPECT_EQ(run(cuts), data);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChunkingEquivalence,
                         ::testing::Values(Scheme::raid0, Scheme::raid1,
                                           Scheme::raid4, Scheme::raid5,
                                           Scheme::hybrid),
                         [](const auto& info) {
                           std::string name = scheme_name(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// ---------- cross-scheme comparisons ----------

TEST(Schemes, ReadBandwidthIsSchemeIndependent) {
  // §4: "the expected performance of reads is the same as in PVFS because
  // redundancy is not read during normal operation."
  std::map<Scheme, sim::Duration> read_time;
  for (Scheme s : {Scheme::raid0, Scheme::raid1, Scheme::raid5,
                   Scheme::hybrid}) {
    Rig rig(small_rig(s));
    run_sim_void(rig, [](Rig& r, std::map<Scheme, sim::Duration>& out,
                         Scheme scheme) -> sim::Task<void> {
      auto& fs = r.client_fs();
      auto f = co_await fs.create("f", r.layout(kSu));
      CO_ASSERT_TRUE(f.ok());
      const std::uint64_t w = f->layout.stripe_width();
      auto wr = co_await fs.write(*f, 0, Buffer::pattern(8 * w, 1));
      CO_ASSERT_TRUE(wr.ok());
      const sim::Time t0 = r.sim.now();
      auto rd = co_await fs.read(*f, 0, 8 * w);
      CO_ASSERT_TRUE(rd.ok());
      out[scheme] = r.sim.now() - t0;
    }(rig, read_time, s));
  }
  // All schemes read within 2% of RAID0.
  for (auto& [s, t] : read_time) {
    EXPECT_NEAR(static_cast<double>(t),
                static_cast<double>(read_time[Scheme::raid0]),
                0.02 * static_cast<double>(read_time[Scheme::raid0]))
        << scheme_name(s);
  }
}

TEST(Schemes, FullStripeWriteTimeOrdering) {
  // For large aligned writes: RAID0 fastest, RAID5/Hybrid close behind
  // (parity fraction), RAID1 slowest (2x bytes through the client link).
  std::map<Scheme, sim::Duration> wt;
  for (Scheme s : {Scheme::raid0, Scheme::raid1, Scheme::raid5,
                   Scheme::hybrid}) {
    Rig rig(small_rig(s));
    run_sim_void(rig, [](Rig& r, std::map<Scheme, sim::Duration>& out,
                         Scheme scheme) -> sim::Task<void> {
      auto& fs = r.client_fs();
      auto f = co_await fs.create("f", r.layout(64 * 1024));
      CO_ASSERT_TRUE(f.ok());
      const std::uint64_t w = f->layout.stripe_width();
      const sim::Time t0 = r.sim.now();
      for (int i = 0; i < 8; ++i) {
        auto wr = co_await fs.write(*f, static_cast<std::uint64_t>(i) * w,
                                    Buffer::phantom(w));
        CO_ASSERT_TRUE(wr.ok());
      }
      out[scheme] = r.sim.now() - t0;
    }(rig, wt, s));
  }
  EXPECT_LT(wt[Scheme::raid0], wt[Scheme::raid5]);
  EXPECT_LT(wt[Scheme::raid5], wt[Scheme::raid1]);
  EXPECT_LT(wt[Scheme::hybrid], wt[Scheme::raid1]);
  // Hybrid == RAID5 for aligned full-stripe workloads (§6.2).
  EXPECT_NEAR(static_cast<double>(wt[Scheme::hybrid]),
              static_cast<double>(wt[Scheme::raid5]),
              0.05 * static_cast<double>(wt[Scheme::raid5]));
}

TEST(Schemes, SmallWriteTimeOrdering) {
  // For one-block writes into an existing cached file: RAID1 == Hybrid,
  // RAID5 slower (reads old data + parity first) — Figure 4(b).
  std::map<Scheme, sim::Duration> wt;
  for (Scheme s : {Scheme::raid1, Scheme::raid5, Scheme::hybrid}) {
    Rig rig(small_rig(s));
    run_sim_void(rig, [](Rig& r, std::map<Scheme, sim::Duration>& out,
                         Scheme scheme) -> sim::Task<void> {
      auto& fs = r.client_fs();
      auto f = co_await fs.create("f", r.layout(64 * 1024));
      CO_ASSERT_TRUE(f.ok());
      const std::uint64_t w = f->layout.stripe_width();
      auto seed = co_await fs.write(*f, 0, Buffer::phantom(4 * w));
      CO_ASSERT_TRUE(seed.ok());
      const sim::Time t0 = r.sim.now();
      for (int i = 0; i < 16; ++i) {
        auto wr = co_await fs.write(
            *f, static_cast<std::uint64_t>(i) * 64 * 1024,
            Buffer::phantom(64 * 1024));
        CO_ASSERT_TRUE(wr.ok());
      }
      out[scheme] = r.sim.now() - t0;
    }(rig, wt, s));
  }
  EXPECT_NEAR(static_cast<double>(wt[Scheme::hybrid]),
              static_cast<double>(wt[Scheme::raid1]),
              0.10 * static_cast<double>(wt[Scheme::raid1]));
  EXPECT_GT(wt[Scheme::raid5], wt[Scheme::raid1]);
}

}  // namespace
}  // namespace csar::raid
