// Degraded-mode writes: continued operation while an I/O server is down,
// with redundancy maintained well enough that (a) degraded reads see the
// new data and (b) a subsequent rebuild restores full fault tolerance.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 5;
  return p;
}

/// Write, fail a server, keep writing in degraded mode, verify via degraded
/// reads, rebuild, verify normal reads and a second failure.
void degraded_write_lifecycle(Scheme scheme, std::uint32_t victim,
                              std::uint64_t seed) {
  Rig rig(rig_params(scheme));
  run_sim_void(rig, [](Rig& r, std::uint32_t down,
                       std::uint64_t sd) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(sd);
    // Healthy phase.
    for (int i = 0; i < 12; ++i) {
      const std::uint64_t off = rng.below(3 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    // Failure; continue writing in degraded mode.
    r.server(down).fail();
    Recovery rec = r.recovery();
    for (int i = 0; i < 12; ++i) {
      const std::uint64_t off = rng.below(3 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await rec.degraded_write(*f, off, std::move(data), down);
      CO_ASSERT_TRUE(wr.ok());
    }
    // Degraded reads see everything, including degraded-mode writes.
    auto rd = co_await rec.degraded_read(*f, 0, ref.size(), down);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));

    // Disk replacement + rebuild restores normal operation...
    r.server(down).wipe();
    r.server(down).recover();
    auto rb = co_await rec.rebuild_server(*f, down, ref.size());
    CO_ASSERT_TRUE(rb.ok());
    auto normal = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(normal.ok());
    EXPECT_EQ(*normal, ref.expect(0, ref.size()));

    // ...and full fault tolerance: any other server may now fail.
    const std::uint32_t second = (down + 2) % r.p.nservers;
    r.server(second).fail();
    auto rd2 = co_await rec.degraded_read(*f, 0, ref.size(), second);
    CO_ASSERT_TRUE(rd2.ok());
    EXPECT_EQ(*rd2, ref.expect(0, ref.size()));
    r.server(second).recover();
  }(rig, victim, seed));
}

TEST(DegradedWrite, Raid1Lifecycle) {
  degraded_write_lifecycle(Scheme::raid1, 1, 101);
}
TEST(DegradedWrite, Raid5Lifecycle) {
  degraded_write_lifecycle(Scheme::raid5, 2, 102);
}
TEST(DegradedWrite, HybridLifecycle) {
  degraded_write_lifecycle(Scheme::hybrid, 3, 103);
}

// Sweep every victim for the paper's scheme.
class DegradedWriteVictims : public ::testing::TestWithParam<std::uint32_t> {
};
TEST_P(DegradedWriteVictims, HybridAnyVictim) {
  degraded_write_lifecycle(Scheme::hybrid, GetParam(), 200 + GetParam());
}
INSTANTIATE_TEST_SUITE_P(Victims, DegradedWriteVictims,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(DegradedWrite, Raid0RefusesWritesToLostServer) {
  Rig rig(rig_params(Scheme::raid0));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    r.server(0).fail();
    Recovery rec = r.recovery();
    // Unit 0 lives on server 0: unwritable.
    auto bad = co_await rec.degraded_write(*f, 0, Buffer::pattern(100, 1), 0);
    EXPECT_FALSE(bad.ok());
    // A write that avoids server 0 entirely succeeds.
    auto good = co_await rec.degraded_write(*f, kSu, Buffer::pattern(100, 2),
                                            0);
    EXPECT_TRUE(good.ok());
  }(rig));
}

TEST(DegradedWrite, Raid5WriteToLostUnitIsRecordedInParity) {
  // The reconstruct-write: the lost unit's new content exists only via the
  // parity, and a degraded read must materialize it.
  Rig rig(rig_params(Scheme::raid5));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    Buffer base = Buffer::pattern(w, 1);
    auto seed = co_await fs.write(*f, 0, base.slice(0, w));
    CO_ASSERT_TRUE(seed.ok());
    // Unit 0 is on server 0: fail it, then overwrite part of unit 0.
    r.server(0).fail();
    Recovery rec = r.recovery();
    Buffer patch = Buffer::pattern(1000, 2);
    auto wr = co_await rec.degraded_write(*f, 100, patch.slice(0, 1000), 0);
    CO_ASSERT_TRUE(wr.ok());
    Buffer expect = base.slice(0, w);
    expect.write_at(100, patch);
    auto rd = co_await rec.degraded_read(*f, 0, w, 0);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, expect);
  }(rig));
}

TEST(DegradedWrite, Raid5LostParityAndLostUnitIsRejected) {
  // If the down server holds the group's parity, a write to any *surviving*
  // unit works (data only), but a write spanning the lost data unit of a
  // group whose parity is also lost cannot be recorded.
  Rig rig(rig_params(Scheme::raid5));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // Group 0 (units 0..3) has parity on server 4.
    CO_ASSERT_EQ(f->layout.parity_server(0), 4u);
    r.server(4).fail();
    Recovery rec = r.recovery();
    // Partial write to unit 0 (on surviving server 0): fine.
    auto ok = co_await rec.degraded_write(*f, 100, Buffer::pattern(500, 1),
                                          4);
    EXPECT_TRUE(ok.ok());
  }(rig));
}

TEST(DegradedWrite, HybridFullStripeInvalidatesOverflowWhileDegraded) {
  Rig rig(rig_params(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    // Partial write creates overflow; then a full-stripe degraded write
    // must supersede it.
    auto w1 = co_await fs.write(*f, 100, Buffer::pattern(500, 1));
    CO_ASSERT_TRUE(w1.ok());
    r.server(1).fail();
    Recovery rec = r.recovery();
    Buffer full = Buffer::pattern(w, 2);
    auto w2 = co_await rec.degraded_write(*f, 0, full.slice(0, w), 1);
    CO_ASSERT_TRUE(w2.ok());
    auto rd = co_await rec.degraded_read(*f, 0, w, 1);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, full);
  }(rig));
}

}  // namespace
}  // namespace csar::raid
