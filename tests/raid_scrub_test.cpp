// Scrubber: online redundancy verification and repair across schemes.
#include "raid/scrub.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pvfs/io_server.hpp"
#include "raid/rig.hpp"
#include "sim/sync.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme, std::uint32_t nclients = 1) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 5;
  p.nclients = nclients;
  return p;
}

/// Random workload, then verify() must report a clean file.
void clean_after_writes(Scheme scheme) {
  Rig rig(rig_params(scheme));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(42);
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(2 * w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    Scrubber scrub(r.client(), r.p.scheme);
    auto report = co_await scrub.verify(*f, ref.size());
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    if (uses_parity(r.p.scheme)) {
      EXPECT_GT(report->groups_checked, 0u);
    }
    if (r.p.scheme == Scheme::raid1) {
      EXPECT_GT(report->mirror_units_checked, 0u);
    }
  }(rig));
}

TEST(Scrub, CleanAfterWritesRaid1) { clean_after_writes(Scheme::raid1); }
TEST(Scrub, CleanAfterWritesRaid5) { clean_after_writes(Scheme::raid5); }
TEST(Scrub, CleanAfterWritesHybrid) { clean_after_writes(Scheme::hybrid); }

TEST(Scrub, Raid0HasNothingToAudit) {
  Rig rig(rig_params(Scheme::raid0));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::pattern(8 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    Scrubber scrub(r.client(), Scheme::raid0);
    auto report = co_await scrub.verify(*f, 8 * kSu);
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    EXPECT_EQ(report->groups_checked, 0u);
  }(rig));
}

TEST(Scrub, DetectsNoLockCorruption) {
  // The exact scenario from §5.1: concurrent same-stripe writers without
  // locking corrupt the parity; the scrubber must find it.
  RigParams p = rig_params(Scheme::raid5_nolock, /*nclients=*/4);
  p.nservers = 5;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    sim::WaitGroup wg(r.sim);
    wg.add(4);
    for (std::uint32_t c = 0; c < 4; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        auto wr = co_await rr.client_fs(client).write(
            file, static_cast<std::uint64_t>(client) * kSu,
            Buffer::pattern(kSu, client));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();
    Scrubber scrub(r.client(0), Scheme::raid5_nolock);
    auto report = co_await scrub.verify(*f, 4 * kSu);
    CO_ASSERT_TRUE(report.ok());
    EXPECT_GT(report->parity_mismatches, 0u);
    EXPECT_EQ(report->repaired, 0u);  // verify never writes
  }(rig));
}

TEST(Scrub, RepairsNoLockCorruption) {
  RigParams p = rig_params(Scheme::raid5_nolock, /*nclients=*/4);
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    sim::WaitGroup wg(r.sim);
    wg.add(4);
    RefFile ref;
    for (std::uint32_t c = 0; c < 4; ++c) {
      ref.write(static_cast<std::uint64_t>(c) * kSu,
                Buffer::pattern(kSu, 50 + c));
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        auto wr = co_await rr.client_fs(client).write(
            file, static_cast<std::uint64_t>(client) * kSu,
            Buffer::pattern(kSu, 50 + client));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();
    Scrubber scrub(r.client(0), Scheme::raid5_nolock);
    auto repair = co_await scrub.repair(*f, ref.size());
    CO_ASSERT_TRUE(repair.ok());
    EXPECT_GT(repair->repaired, 0u);
    // Now the file is failure-tolerant again: reconstruct each server.
    Recovery rec(r.client(0), Scheme::raid5);
    for (std::uint32_t victim = 0; victim < r.p.nservers; ++victim) {
      r.server(victim).fail();
      auto rd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size())) << "victim " << victim;
      r.server(victim).recover();
    }
    // And a re-verify is clean.
    auto verify = co_await scrub.verify(*f, ref.size());
    CO_ASSERT_TRUE(verify.ok());
    EXPECT_TRUE(verify->clean());
  }(rig));
}

TEST(Scrub, DetectsManuallyCorruptedMirror) {
  Rig rig(rig_params(Scheme::raid1));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await r.client_fs().write(*f, 0, Buffer::pattern(5 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    // Corrupt one mirror block directly in the successor's red file
    // (simulating a torn write).
    co_await r.server(1).fs().write(pvfs::IoServer::red_name(f->handle), 0,
                                    Buffer::pattern(kSu, 999));
    Scrubber scrub(r.client(), Scheme::raid1);
    auto report = co_await scrub.verify(*f, 5 * kSu);
    CO_ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->mirror_mismatches, 1u);
    // Repair fixes it.
    auto rep = co_await scrub.repair(*f, 5 * kSu);
    CO_ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep->repaired, 1u);
    auto clean = co_await scrub.verify(*f, 5 * kSu);
    CO_ASSERT_TRUE(clean.ok());
    EXPECT_TRUE(clean->clean());
  }(rig));
}

TEST(Scrub, HybridOverflowPairsAudited) {
  Rig rig(rig_params(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // Several partial writes create primary+mirror overflow pairs.
    for (int i = 0; i < 5; ++i) {
      auto wr = co_await r.client_fs().write(
          *f, static_cast<std::uint64_t>(i) * kSu + 100,
          Buffer::pattern(500, i));
      CO_ASSERT_TRUE(wr.ok());
    }
    Scrubber scrub(r.client(), Scheme::hybrid);
    auto report = co_await scrub.verify(*f, 6 * kSu);
    CO_ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    EXPECT_GE(report->overflow_pairs_checked, 5u);
  }(rig));
}

}  // namespace
}  // namespace csar::raid
