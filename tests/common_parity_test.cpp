#include "common/parity.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/buffer.hpp"
#include "common/rng.hpp"

namespace csar {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.below(256));
  return v;
}

TEST(Parity, XorBytesBasic) {
  std::vector<std::byte> a = {std::byte{0xF0}, std::byte{0x0F}};
  std::vector<std::byte> b = {std::byte{0xFF}, std::byte{0xFF}};
  xor_bytes(a, b);
  EXPECT_EQ(a[0], std::byte{0x0F});
  EXPECT_EQ(a[1], std::byte{0xF0});
}

// Word-wise and byte-wise kernels must agree on every length (alignment
// tails are where word-wise code goes wrong).
class ParityKernelEquivalence : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(ParityKernelEquivalence, WordMatchesByte) {
  const std::size_t n = GetParam();
  Rng rng(1234 + n);
  auto src = random_bytes(rng, n);
  auto dst1 = random_bytes(rng, n);
  auto dst2 = dst1;
  xor_bytes(dst1, src);
  xor_words(dst2, src);
  EXPECT_EQ(dst1, dst2) << "length " << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, ParityKernelEquivalence,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                                           63, 64, 65, 1023, 1024, 4096,
                                           4097));

TEST(Parity, SelfInverse) {
  Rng rng(99);
  auto src = random_bytes(rng, 257);
  auto dst = random_bytes(rng, 257);
  const auto orig = dst;
  xor_words(dst, src);
  xor_words(dst, src);
  EXPECT_EQ(dst, orig);
}

TEST(Parity, AccumulateRecoversMissingSource) {
  // RAID5 invariant: P = D0 ^ D1 ^ D2  =>  D1 = P ^ D0 ^ D2.
  Rng rng(5);
  constexpr std::size_t kN = 128;
  auto d0 = random_bytes(rng, kN);
  auto d1 = random_bytes(rng, kN);
  auto d2 = random_bytes(rng, kN);
  std::vector<std::byte> parity(kN, std::byte{0});
  std::vector<std::span<const std::byte>> all = {d0, d1, d2};
  xor_accumulate(parity, all);

  std::vector<std::byte> rebuilt(kN, std::byte{0});
  std::vector<std::span<const std::byte>> survivors = {parity, d0, d2};
  xor_accumulate(rebuilt, survivors);
  EXPECT_EQ(rebuilt, d1);
}

TEST(Parity, ShortSourceContributesPrefix) {
  // Parity of zero-padded units: a short source only affects its prefix.
  std::vector<std::byte> dst(8, std::byte{0});
  std::vector<std::byte> s1 = {std::byte{0xAA}, std::byte{0xBB}};
  std::vector<std::span<const std::byte>> srcs = {s1};
  xor_accumulate(dst, srcs);
  EXPECT_EQ(dst[0], std::byte{0xAA});
  EXPECT_EQ(dst[1], std::byte{0xBB});
  for (std::size_t i = 2; i < 8; ++i) EXPECT_EQ(dst[i], std::byte{0});
}

TEST(Parity, BufferXorUsesWordKernel) {
  Buffer a = Buffer::pattern(1000, 1);
  Buffer b = Buffer::pattern(1000, 2);
  Buffer expect = Buffer::real(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    expect.mutable_bytes()[i] = a.bytes()[i] ^ b.bytes()[i];
  }
  a.xor_with(b);
  EXPECT_EQ(a, expect);
}

}  // namespace
}  // namespace csar
