// FaultInjector mechanics: the declarative plan executes on schedule, media
// errors surface as distinct repairable findings, and crash/restart keeps
// durable content while volatile state is lost.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "raid/health.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "raid/scrub.hpp"
#include "test_util.hpp"

namespace csar::fault {
namespace {

using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 16 * 1024;

raid::RigParams rig_params(raid::Scheme scheme = raid::Scheme::raid5) {
  raid::RigParams p;
  p.scheme = scheme;
  p.nservers = 4;
  p.rpc.timeout = sim::ms(200);
  p.rpc.max_attempts = 3;
  return p;
}

std::vector<pvfs::IoServer*> server_ptrs(raid::Rig& rig) {
  std::vector<pvfs::IoServer*> out;
  for (auto& s : rig.servers) out.push_back(s.get());
  return out;
}

TEST(FaultInjector, TimelineExecutesInOrder) {
  raid::Rig rig(rig_params());
  FaultPlan plan;
  plan.crashes.push_back({sim::ms(100), 1, sim::ms(400), false});
  SlowDisk sd;
  sd.start = sim::ms(200);
  sd.end = sim::ms(300);
  sd.server = 0;
  sd.factor = 3.0;
  plan.slow_disks.push_back(sd);
  FaultInjector inj(rig.cluster, rig.fabric, server_ptrs(rig), plan);
  ASSERT_TRUE(inj.first_crash_time().has_value());
  EXPECT_EQ(*inj.first_crash_time(), sim::ms(100));
  inj.start();
  run_sim_void(rig, [](raid::Rig& r, FaultInjector* in) -> sim::Task<void> {
    co_await r.sim.sleep(sim::ms(150));
    EXPECT_TRUE(r.server(1).crashed());
    co_await r.sim.sleep(sim::ms(100));  // t=250ms: inside the slow window
    EXPECT_EQ(in->stats().slow_periods, 1u);
    co_await r.sim.sleep(sim::ms(300));  // t=550ms: past the restart
    EXPECT_FALSE(r.server(1).crashed());
    EXPECT_EQ(in->stats().crashes, 1u);
    EXPECT_EQ(in->stats().restarts, 1u);
    EXPECT_EQ(in->trace().size(), 4u);  // crash, slow on, slow off, restart
  }(rig, &inj));
}

TEST(FaultInjector, CrashKeepsDurableContentDropsCache) {
  raid::Rig rig(rig_params());
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(8 * kSu, 3);
    auto wr = co_await fs.write(*f, 0, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    r.server(1).crash();
    EXPECT_EQ(r.server(1).fs().cache().dirty_pages(), 0u);
    r.server(1).restart(/*wipe_disk=*/false);
    // Applied writes are durable: the data survives the crash (only the
    // timing changes — everything now re-reads cold).
    auto rd = co_await fs.read(*f, 0, data.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
  }(rig));
}

TEST(FaultInjector, MediaErrorIsReroutedThenScrubRepaired) {
  raid::Rig rig(rig_params());
  raid::HealthMonitor mon(rig.client());
  rig.client_fs().enable_failover(&mon);
  FaultPlan plan;
  MediaFault mf;
  mf.at = sim::ms(100);
  mf.server = 3;
  mf.file = pvfs::IoServer::data_name(1);
  mf.off = 0;
  mf.len = 1024 * 1024;  // blanket the whole local data extent
  plan.media.push_back(mf);
  FaultInjector inj(rig.cluster, rig.fabric, server_ptrs(rig), plan);
  run_sim_void(rig, [](raid::Rig& r, raid::HealthMonitor* m,
                       FaultInjector* in) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t size = 16 * kSu;
    Buffer data = Buffer::pattern(size, 9);
    auto wr = co_await fs.write(*f, 0, data.slice(0, size));
    CO_ASSERT_TRUE(wr.ok());
    r.drop_all_caches();  // reads must actually touch the bad sectors
    m->start();
    in->start();
    co_await r.sim.sleep(sim::ms(200));  // past the plant time
    EXPECT_EQ(in->stats().media_planted, 1u);
    // A read over the bad range still succeeds: the media error carries the
    // culprit server, and the client reroutes through the degraded path.
    auto rd = co_await fs.read(*f, 0, size);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
    EXPECT_GE(fs.failover_stats().reactive, 1u);
    EXPECT_GE(fs.failover_stats().degraded_reads, 1u);
    // The scrubber sees a latent sector error as a repairable finding, not
    // a dead server: it rewrites the unreadable units from redundancy.
    raid::Scrubber scrub(r.client(), r.p.scheme);
    auto rep = co_await scrub.repair(*f, size);
    CO_ASSERT_TRUE(rep.ok());
    EXPECT_GE(rep->media_errors, 1u);
    EXPECT_GE(rep->repaired, 1u);
    EXPECT_EQ(rep->unrepairable, 0u);
    r.drop_all_caches();
    // Rewriting remapped the bad sectors: plain reads work again.
    const std::uint64_t before = r.client_fs().failover_stats().reactive;
    auto again = co_await fs.read(*f, 0, size);
    CO_ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, data);
    EXPECT_EQ(r.client_fs().failover_stats().reactive, before);
    m->stop();
  }(rig, &mon, &inj));
}

TEST(FaultInjector, WipeRestartIsFencedUntilAdmitted) {
  raid::Rig rig(rig_params(raid::Scheme::raid1));
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(8 * kSu, 5);
    auto wr = co_await fs.write(*f, 0, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    r.server(1).crash();
    r.server(1).restart(/*wipe_disk=*/true);
    EXPECT_TRUE(r.server(1).fenced());
    // A fenced server refuses reads: without the fence, a read landing on
    // the blank replacement disk would be answered with plausible zeros.
    auto rd = co_await fs.read(*f, 0, data.size());
    EXPECT_FALSE(rd.ok());
    // Rebuild writes pass through the fence; admit() reopens reads.
    raid::Recovery rec(r.client(), r.p.scheme);
    auto rb = co_await rec.rebuild_server(*f, 1, data.size());
    CO_ASSERT_TRUE(rb.ok());
    r.server(1).admit();
    EXPECT_FALSE(r.server(1).fenced());
    auto again = co_await fs.read(*f, 0, data.size());
    CO_ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, data);
  }(rig));
}

TEST(FaultInjector, MediaFaultOnAbsentFileIsSkipped) {
  raid::Rig rig(rig_params());
  FaultPlan plan;
  MediaFault mf;
  mf.at = sim::ms(10);
  mf.server = 0;
  mf.file = "nope.data";
  mf.len = 4096;
  plan.media.push_back(mf);
  FaultInjector inj(rig.cluster, rig.fabric, server_ptrs(rig), plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r, FaultInjector* in) -> sim::Task<void> {
    co_await r.sim.sleep(sim::ms(50));
    EXPECT_EQ(in->stats().media_planted, 0u);
    EXPECT_EQ(in->trace().size(), 1u);
  }(rig, &inj));
}

}  // namespace
}  // namespace csar::fault
