#include <gtest/gtest.h>

#include <map>

#include "common/buffer.hpp"
#include "common/interval_map.hpp"
#include "common/interval_set.hpp"
#include "common/rng.hpp"

namespace csar {
namespace {

TEST(IntervalSet, InsertAndCovers) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_TRUE(s.covers(12, 15));
  EXPECT_FALSE(s.covers(5, 12));
  EXPECT_FALSE(s.covers(15, 25));
  EXPECT_EQ(s.total(), 10u);
}

TEST(IntervalSet, AdjacentRangesMerge) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(10, 20);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_TRUE(s.covers(0, 20));
}

TEST(IntervalSet, OverlappingInsertMerges) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(5, 25);
  EXPECT_EQ(s.range_count(), 1u);
  EXPECT_TRUE(s.covers(0, 30));
  EXPECT_EQ(s.total(), 30u);
}

TEST(IntervalSet, EraseSplits) {
  IntervalSet s;
  s.insert(0, 30);
  s.erase(10, 20);
  EXPECT_EQ(s.range_count(), 2u);
  EXPECT_TRUE(s.covers(0, 10));
  EXPECT_TRUE(s.covers(20, 30));
  EXPECT_FALSE(s.intersects(10, 20));
}

TEST(IntervalSet, EraseAcrossRanges) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.erase(5, 45);
  EXPECT_EQ(s.total(), 10u);
  EXPECT_TRUE(s.covers(0, 5));
  EXPECT_TRUE(s.covers(45, 50));
}

TEST(IntervalSet, HolesOfSparseRange) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  auto holes = s.holes(0, 50);
  ASSERT_EQ(holes.size(), 3u);
  EXPECT_EQ(holes[0], (Interval{0, 10}));
  EXPECT_EQ(holes[1], (Interval{20, 30}));
  EXPECT_EQ(holes[2], (Interval{40, 50}));
}

TEST(IntervalSet, IntersectionClips) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  auto iv = s.intersection(15, 35);
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv[0], (Interval{15, 20}));
  EXPECT_EQ(iv[1], (Interval{30, 35}));
}

TEST(IntervalSet, UpperBound) {
  IntervalSet s;
  EXPECT_EQ(s.upper_bound(), 0u);
  s.insert(10, 20);
  s.insert(100, 150);
  EXPECT_EQ(s.upper_bound(), 150u);
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet s;
  s.insert(5, 5);
  EXPECT_TRUE(s.empty());
}

// Property test: IntervalSet behaves like a reference bitset under random
// insert/erase sequences.
TEST(IntervalSetProperty, MatchesReferenceBitset) {
  constexpr std::uint64_t kUniverse = 512;
  Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    IntervalSet s;
    std::vector<bool> ref(kUniverse, false);
    for (int op = 0; op < 200; ++op) {
      const std::uint64_t a = rng.below(kUniverse);
      const std::uint64_t b = rng.below(kUniverse);
      const std::uint64_t lo = std::min(a, b);
      const std::uint64_t hi = std::max(a, b);
      if (rng.chance(0.6)) {
        s.insert(lo, hi);
        for (std::uint64_t i = lo; i < hi; ++i) ref[i] = true;
      } else {
        s.erase(lo, hi);
        for (std::uint64_t i = lo; i < hi; ++i) ref[i] = false;
      }
    }
    std::uint64_t ref_total = 0;
    for (bool v : ref) ref_total += v ? 1 : 0;
    ASSERT_EQ(s.total(), ref_total);
    // Check coverage at every point, plus invariants on the range list.
    for (std::uint64_t i = 0; i < kUniverse; ++i) {
      ASSERT_EQ(s.covers(i, i + 1), ref[i]) << "at offset " << i;
    }
    auto ranges = s.to_vector();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      ASSERT_LT(ranges[i].start, ranges[i].end);
      if (i > 0) {
        ASSERT_GT(ranges[i].start, ranges[i - 1].end);  // coalesced
      }
    }
  }
}

// Node-based reference port of the pre-flat IntervalSet (std::map<start,end>
// with the merge/split logic the old implementation used). The flat
// sorted-vector version must agree with it on every observable after any
// operation sequence.
class MapIntervalSet {
 public:
  void insert(std::uint64_t start, std::uint64_t end) {
    if (start >= end) return;
    auto it = ranges_.upper_bound(start);
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {  // adjacency merges too
        start = prev->first;
        end = std::max(end, prev->second);
        it = ranges_.erase(prev);
      }
    }
    while (it != ranges_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = ranges_.erase(it);
    }
    ranges_.emplace(start, end);
  }

  void erase(std::uint64_t start, std::uint64_t end) {
    if (start >= end) return;
    auto it = ranges_.upper_bound(start);
    if (it != ranges_.begin() && std::prev(it)->second > start) --it;
    while (it != ranges_.end() && it->first < end) {
      const std::uint64_t rs = it->first;
      const std::uint64_t re = it->second;
      it = ranges_.erase(it);
      if (rs < start) ranges_.emplace(rs, start);
      if (re > end) {
        ranges_.emplace(end, re);
        break;
      }
    }
  }

  std::vector<Interval> to_vector() const {
    std::vector<Interval> out;
    for (const auto& [s, e] : ranges_) out.push_back({s, e});
    return out;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> ranges_;
};

// Random operation sequences: the flat IntervalSet must stay exactly equal
// to the node-based implementation it replaced, range list and all.
TEST(IntervalSetProperty, MatchesLegacyMapImplementation) {
  constexpr std::uint64_t kUniverse = 1u << 20;  // force uneven range sizes
  Rng rng(0xF1A7);
  for (int trial = 0; trial < 10; ++trial) {
    IntervalSet flat;
    MapIntervalSet legacy;
    for (int op = 0; op < 400; ++op) {
      const std::uint64_t a = rng.below(kUniverse);
      const std::uint64_t len = rng.below(kUniverse / 8) + (op % 2);
      const std::uint64_t lo = a;
      const std::uint64_t hi = std::min(a + len, kUniverse);
      if (rng.chance(0.6)) {
        flat.insert(lo, hi);
        legacy.insert(lo, hi);
      } else {
        flat.erase(lo, hi);
        legacy.erase(lo, hi);
      }
      ASSERT_EQ(flat.to_vector(), legacy.to_vector())
          << "trial " << trial << " op " << op;
    }
    // Spot-check the read-side API against the agreed range list.
    const auto ranges = flat.to_vector();
    for (int q = 0; q < 50; ++q) {
      const std::uint64_t s = rng.below(kUniverse);
      const std::uint64_t e = std::min(s + rng.below(kUniverse / 8) + 1,
                                       kUniverse);
      bool any = false, all = e > s;
      for (std::uint64_t x = s; x < e; x += (e - s + 99) / 100) {
        bool in = false;
        for (const auto& r : ranges) in = in || (r.start <= x && x < r.end);
        any = any || in;
        all = all && in;
      }
      if (all) {
        EXPECT_TRUE(flat.covers(s, e));
      }
      EXPECT_EQ(flat.intersects(s, e), !flat.intersection(s, e).empty());
    }
  }
}

// --- IntervalMap with Buffer payloads (the sparse-file use case) ---

struct BufferSlicer {
  Buffer operator()(const Buffer& b, std::uint64_t off,
                    std::uint64_t len) const {
    return b.slice(off, len);
  }
};
using FileMap = IntervalMap<Buffer, BufferSlicer>;

TEST(IntervalMap, InsertAndQuery) {
  FileMap m;
  m.insert(0, 8, Buffer::pattern(8, 1));
  auto q = m.query(0, 8);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].start, 0u);
  EXPECT_EQ(q[0].end, 8u);
}

TEST(IntervalMap, OverwriteSplitsOldEntry) {
  FileMap m;
  Buffer base = Buffer::pattern(16, 1);
  m.insert(0, 16, base.slice(0, 16));
  m.insert(4, 12, Buffer::pattern(8, 2));
  auto q = m.query(0, 16);
  ASSERT_EQ(q.size(), 3u);
  // Left remnant keeps the original prefix bytes.
  EXPECT_EQ(q[0].start, 0u);
  EXPECT_EQ(q[0].end, 4u);
  EXPECT_EQ(*q[0].value, base.slice(0, 4));
  // Middle is the new write.
  EXPECT_EQ(q[1].start, 4u);
  EXPECT_EQ(q[1].end, 12u);
  // Right remnant keeps the original suffix bytes.
  EXPECT_EQ(q[2].start, 12u);
  EXPECT_EQ(q[2].end, 16u);
  EXPECT_EQ(*q[2].value, base.slice(12, 4));
}

TEST(IntervalMap, QueryClipsAndReportsEntryStart) {
  FileMap m;
  m.insert(10, 30, Buffer::pattern(20, 3));
  auto q = m.query(15, 20);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].start, 15u);
  EXPECT_EQ(q[0].end, 20u);
  EXPECT_EQ(q[0].entry_start, 10u);
}

TEST(IntervalMap, EraseMiddle) {
  FileMap m;
  m.insert(0, 30, Buffer::pattern(30, 4));
  m.erase(10, 20);
  EXPECT_EQ(m.covered_bytes(), 20u);
  EXPECT_TRUE(m.query(10, 20).empty());
  EXPECT_EQ(m.query(0, 10).size(), 1u);
  EXPECT_EQ(m.query(20, 30).size(), 1u);
}

TEST(IntervalMap, CoveredBytesAndUpperBound) {
  FileMap m;
  EXPECT_EQ(m.upper_bound(), 0u);
  m.insert(100, 200, Buffer::phantom(100));
  m.insert(300, 350, Buffer::phantom(50));
  EXPECT_EQ(m.covered_bytes(), 150u);
  EXPECT_EQ(m.upper_bound(), 350u);
}

// Property: after arbitrary writes, reading back through the map yields
// exactly the bytes of the latest write at every offset.
TEST(IntervalMapProperty, LatestWriteWins) {
  constexpr std::uint64_t kUniverse = 256;
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    FileMap m;
    std::vector<std::byte> ref(kUniverse, std::byte{0});
    std::vector<bool> written(kUniverse, false);
    for (int op = 0; op < 100; ++op) {
      const std::uint64_t a = rng.below(kUniverse);
      const std::uint64_t b = rng.below(kUniverse);
      const std::uint64_t lo = std::min(a, b);
      const std::uint64_t hi = std::max(a, b);
      if (lo == hi) continue;
      Buffer w = Buffer::pattern(hi - lo, rng.next());
      for (std::uint64_t i = lo; i < hi; ++i) {
        ref[i] = w.bytes()[i - lo];
        written[i] = true;
      }
      m.insert(lo, hi, std::move(w));
    }
    for (const auto& chunk : m.query(0, kUniverse)) {
      for (std::uint64_t off = chunk.start; off < chunk.end; ++off) {
        ASSERT_TRUE(written[off]);
        ASSERT_EQ(chunk.value->bytes()[off - chunk.entry_start], ref[off])
            << "offset " << off;
      }
    }
    std::uint64_t covered = 0;
    for (bool w : written) covered += w ? 1 : 0;
    ASSERT_EQ(m.covered_bytes(), covered);
  }
}

// Node-based reference port of the pre-flat IntervalMap: std::map from
// start to (end, value), same slicing rules on partial overwrites.
class MapFileMap {
 public:
  void insert(std::uint64_t start, std::uint64_t end, Buffer value) {
    if (start >= end) return;
    erase(start, end);
    entries_.emplace(start, Entry{end, std::move(value)});
  }

  void erase(std::uint64_t start, std::uint64_t end) {
    if (start >= end) return;
    auto it = entries_.upper_bound(start);
    if (it != entries_.begin() && std::prev(it)->second.end > start) --it;
    while (it != entries_.end() && it->first < end) {
      const std::uint64_t rs = it->first;
      const std::uint64_t re = it->second.end;
      Buffer v = std::move(it->second.value);
      it = entries_.erase(it);
      if (rs < start) {
        entries_.emplace(rs, Entry{start, v.slice(0, start - rs)});
      }
      if (re > end) {
        entries_.emplace(end, Entry{re, v.slice(end - rs, re - end)});
        break;
      }
    }
  }

  std::vector<std::tuple<std::uint64_t, std::uint64_t, Buffer>> entries()
      const {
    std::vector<std::tuple<std::uint64_t, std::uint64_t, Buffer>> out;
    for (const auto& [s, e] : entries_) out.emplace_back(s, e.end, e.value);
    return out;
  }

 private:
  struct Entry {
    std::uint64_t end;
    Buffer value;
  };
  std::map<std::uint64_t, Entry> entries_;
};

// Random insert/erase sequences: flat IntervalMap entry lists (bounds and
// payload bytes) must match the node-based implementation step for step.
TEST(IntervalMapProperty, MatchesLegacyMapImplementation) {
  constexpr std::uint64_t kUniverse = 4096;
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 10; ++trial) {
    FileMap flat;
    MapFileMap legacy;
    for (int op = 0; op < 200; ++op) {
      const std::uint64_t a = rng.below(kUniverse);
      const std::uint64_t len = rng.below(kUniverse / 4) + 1;
      const std::uint64_t lo = a;
      const std::uint64_t hi = std::min(a + len, kUniverse);
      if (lo >= hi) continue;
      if (rng.chance(0.7)) {
        const std::uint64_t tag = rng.next();
        flat.insert(lo, hi, Buffer::pattern(hi - lo, tag));
        legacy.insert(lo, hi, Buffer::pattern(hi - lo, tag));
      } else {
        flat.erase(lo, hi);
        legacy.erase(lo, hi);
      }
      std::vector<std::tuple<std::uint64_t, std::uint64_t, Buffer>> got;
      flat.for_each([&](std::uint64_t s, std::uint64_t e, const Buffer& v) {
        got.emplace_back(s, e, v);
      });
      const auto want = legacy.entries();
      ASSERT_EQ(got.size(), want.size())
          << "trial " << trial << " op " << op;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(std::get<0>(got[i]), std::get<0>(want[i]));
        ASSERT_EQ(std::get<1>(got[i]), std::get<1>(want[i]));
        ASSERT_EQ(std::get<2>(got[i]), std::get<2>(want[i]))
            << "entry " << i << " payload mismatch";
      }
    }
  }
}

}  // namespace
}  // namespace csar
