// The PVFS substrate end-to-end: metadata manager semantics, multi-client
// visibility, flush, storage accounting, and failure error propagation.
#include <gtest/gtest.h>

#include "pvfs/io_server.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::pvfs {
namespace {

using csar::test::run_sim_void;
using raid::Rig;
using raid::RigParams;
using raid::Scheme;

constexpr std::uint32_t kSu = 4096;

RigParams raid0_rig(std::uint32_t nclients = 1) {
  RigParams p;
  p.scheme = Scheme::raid0;
  p.nservers = 4;
  p.nclients = nclients;
  return p;
}

TEST(Manager, CreateOpenRemoveLifecycle) {
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    auto created = co_await c.create("file-a", r.layout(kSu));
    CO_ASSERT_TRUE(created.ok());
    EXPECT_GT(created->handle, 0u);

    auto dup = co_await c.create("file-a", r.layout(kSu));
    EXPECT_FALSE(dup.ok());
    EXPECT_EQ(dup.error().code, Errc::already_exists);

    auto opened = co_await c.open("file-a");
    CO_ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened->handle, created->handle);
    EXPECT_EQ(opened->layout.stripe_unit, kSu);

    auto missing = co_await c.open("nope");
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, Errc::not_found);

    auto removed = co_await c.remove("file-a");
    EXPECT_TRUE(removed.ok());
    auto gone = co_await c.open("file-a");
    EXPECT_FALSE(gone.ok());
  }(rig));
}

TEST(Manager, HandlesAreUnique) {
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& c = r.client();
    auto a = co_await c.create("a", r.layout(kSu));
    auto b = co_await c.create("b", r.layout(kSu));
    CO_ASSERT_TRUE(a.ok());
    CO_ASSERT_TRUE(b.ok());
    EXPECT_NE(a->handle, b->handle);
  }(rig));
}

TEST(System, CrossClientVisibility) {
  Rig rig(raid0_rig(2));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client(0).create("shared", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(10 * kSu, 1);
    auto wr = co_await r.client(0).write_striped(*f, 0, data);
    CO_ASSERT_TRUE(wr.ok());
    // Client 1 opens by name and reads what client 0 wrote.
    auto f2 = co_await r.client(1).open("shared");
    CO_ASSERT_TRUE(f2.ok());
    auto rd = co_await r.client(1).read(*f2, 0, 10 * kSu);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);
  }(rig));
}

TEST(System, ConcurrentDisjointWritersCompose) {
  // The key PVFS workload: N clients writing disjoint regions of one file.
  Rig rig(raid0_rig(4));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client(0).create("shared", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    constexpr std::uint64_t kChunk = 8 * kSu;
    sim::WaitGroup wg(r.sim);
    wg.add(4);
    for (std::uint32_t c = 0; c < 4; ++c) {
      r.sim.spawn([](Rig& rr, OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        auto wr = co_await rr.client(client).write_striped(
            file, client * kChunk, Buffer::pattern(kChunk, client));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();
    for (std::uint32_t c = 0; c < 4; ++c) {
      auto rd = co_await r.client(0).read(*f, c * kChunk, kChunk);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, Buffer::pattern(kChunk, c)) << "region " << c;
    }
  }(rig));
}

TEST(System, FlushPushesAllDirtyToDisk) {
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await r.client().write_striped(*f, 0,
                                                Buffer::pattern(64 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto fl = co_await r.client().flush(*f);
    EXPECT_TRUE(fl.ok());
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      EXPECT_EQ(r.server(s).fs().cache().dirty_pages(), 0u) << "server " << s;
    }
  }(rig));
}

TEST(System, StorageAccountingRaid0) {
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await r.client().write_striped(
        *f, 0, Buffer::pattern(16 * kSu + 123, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto info = co_await r.client().storage(*f);
    EXPECT_EQ(info.data_bytes, 16 * kSu + 123);
    EXPECT_EQ(info.red_bytes, 0u);
    EXPECT_EQ(info.overflow_bytes, 0u);
  }(rig));
}

TEST(System, FailedServerReturnsErrors) {
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await r.client().write_striped(*f, 0,
                                                Buffer::pattern(8 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    r.server(1).fail();
    auto rd = co_await r.client().read(*f, 0, 8 * kSu);
    EXPECT_FALSE(rd.ok());
    EXPECT_EQ(rd.error().code, Errc::server_failed);
    // Writes touching the failed server fail too.
    auto wr2 = co_await r.client().write_striped(*f, 0,
                                                 Buffer::pattern(8 * kSu, 2));
    EXPECT_FALSE(wr2.ok());
    // Recovery restores service.
    r.server(1).recover();
    auto rd2 = co_await r.client().read(*f, 0, 8 * kSu);
    EXPECT_TRUE(rd2.ok());
  }(rig));
}

TEST(System, PhantomPayloadsFlowThroughTheStack) {
  // Phantom buffers (used by the large benchmarks) must produce the same
  // sizes and server-side accounting as real ones.
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await r.client().write_striped(*f, 0,
                                                Buffer::phantom(100 * kSu));
    CO_ASSERT_TRUE(wr.ok());
    auto info = co_await r.client().storage(*f);
    EXPECT_EQ(info.data_bytes, 100 * kSu);
    auto rd = co_await r.client().read(*f, 0, 100 * kSu);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_FALSE(rd->materialized());
    EXPECT_EQ(rd->size(), 100u * kSu);
  }(rig));
}

TEST(System, TimingSameForRealAndPhantomPayloads) {
  // Phantom mode changes memory usage, never simulated timing.
  sim::Duration t_real = 0;
  sim::Duration t_phantom = 0;
  for (bool phantom : {false, true}) {
    Rig rig(raid0_rig());
    run_sim_void(rig, [](Rig& r, bool ph, sim::Duration* out) -> sim::Task<void> {
      auto f = co_await r.client().create("f", r.layout(kSu));
      CO_ASSERT_TRUE(f.ok());
      const sim::Time t0 = r.sim.now();
      Buffer data =
          ph ? Buffer::phantom(64 * kSu) : Buffer::pattern(64 * kSu, 1);
      auto wr = co_await r.client().write_striped(*f, 0, data);
      CO_ASSERT_TRUE(wr.ok());
      auto rd = co_await r.client().read(*f, 0, 64 * kSu);
      CO_ASSERT_TRUE(rd.ok());
      *out = r.sim.now() - t0;
    }(rig, phantom, phantom ? &t_phantom : &t_real));
  }
  EXPECT_EQ(t_real, t_phantom);
}

TEST(System, ReadOfUnwrittenRegionIsZeros) {
  Rig rig(raid0_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto rd = co_await r.client().read(*f, 12345, 777);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, Buffer::real(777));
  }(rig));
}

}  // namespace
}  // namespace csar::pvfs
