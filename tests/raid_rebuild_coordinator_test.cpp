// RebuildCoordinator: online, write-safe reconstruction. These tests drive
// the coordinator the way the storm and figure benches do — crash a server
// under a live client, restart it (blank or with a surviving disk) and let
// the coordinator rebuild and admit it without quiescing — then verify the
// result byte-for-byte against a reference model.
#include "raid/rebuild.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "raid/health.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 32 * 1024;
constexpr std::uint64_t kFile = 1024 * 1024;

RigParams rig_params() {
  RigParams p;
  p.scheme = Scheme::hybrid;
  p.nservers = 5;
  p.rpc.timeout = sim::ms(150);
  p.rpc.max_attempts = 4;
  p.rpc.backoff = sim::ms(5);
  return p;
}

/// Spin until the coordinator has nothing left to do (or `bound` elapses).
sim::Task<void> await_idle(Rig& r, RebuildCoordinator& co,
                           sim::Duration bound) {
  const sim::Time give_up = r.sim.now() + bound;
  while (!co.idle() && r.sim.now() < give_up) {
    co_await r.sim.sleep(sim::ms(5));
  }
}

// A server restarts blank mid-workload; the client keeps writing patterned
// data while the coordinator rebuilds. Every write must land exactly once:
// regions dirtied during the copy are re-copied before admit, so the final
// content matches the reference model byte for byte.
TEST(RebuildCoordinator, ConcurrentWritesStayByteExact) {
  Rig rig(rig_params());
  HealthParams hp;
  hp.interval = sim::ms(50);
  HealthMonitor mon(rig.client(), hp);
  rig.client_fs().enable_failover(&mon);
  RebuildCoordinator coord(rig, mon, RebuildParams{});

  run_sim_void(rig, [](Rig& r, HealthMonitor& m,
                       RebuildCoordinator& co) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    co.track(*f, kFile);
    RefFile ref;
    Rng rng(4242);
    Buffer preload = Buffer::pattern(kFile, rng.next());
    ref.write(0, preload);
    auto wr = co_await fs.write(*f, 0, std::move(preload));
    CO_ASSERT_TRUE(wr.ok());
    auto fl = co_await fs.flush(*f);
    CO_ASSERT_TRUE(fl.ok());

    m.start();
    co.start();
    r.server(1).crash();

    // Write through the outage: once the monitor flags the server these go
    // down the degraded path and land only in the redundancy, so the
    // coordinator must track them as stale for the rebuild.
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t len = 1 + rng.below(3 * kSu);
      const std::uint64_t off = rng.below(kFile - len);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto w = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(w.ok());
      co_await r.sim.sleep(sim::ms(10));
    }
    r.server(1).restart(/*wipe_disk=*/true);

    // Keep writing while the rebuild runs; offsets and lengths are
    // arbitrary (unaligned) so the dirty tracking sees partial units.
    for (int i = 0; i < 60; ++i) {
      const std::uint64_t len = 1 + rng.below(3 * kSu);
      const std::uint64_t off = rng.below(kFile - len);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto w = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(w.ok());
      co_await r.sim.sleep(sim::ms(1));
    }

    co_await await_idle(r, co, sim::sec(60));
    EXPECT_FALSE(r.server(1).fenced());
    EXPECT_GE(co.stats().rebuilds_completed, 1u);
    EXPECT_EQ(co.stats().rebuilds_failed, 0u);
    EXPECT_GT(co.stats().dirty_bytes, 0u);

    auto rd = co_await fs.read(*f, 0, kFile);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, kFile));
    m.stop();
    co.stop();
  }(rig, mon, coord));
}

struct NonWipeOutcome {
  RebuildStats stats;
  bool fenced = true;
  bool byte_exact = false;
};

/// Crash a server whose dirty pages are volatile, degraded-write around it
/// while it is down, then restart it with (wipe=false) or without
/// (wipe=true kept as control) its disk contents.
NonWipeOutcome run_restart(bool wipe) {
  RigParams rp = rig_params();
  rp.fs.volatile_dirty_pages = true;
  Rig rig(rp);
  HealthParams hp;
  hp.interval = sim::ms(50);
  HealthMonitor mon(rig.client(), hp);
  rig.client_fs().enable_failover(&mon);
  RebuildCoordinator coord(rig, mon, RebuildParams{});

  NonWipeOutcome out;
  run_sim_void(rig, [](Rig& r, HealthMonitor& m, RebuildCoordinator& co,
                       bool wipe, NonWipeOutcome* out) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    co.track(*f, kFile);
    RefFile ref;
    Rng rng(777);
    Buffer preload = Buffer::pattern(kFile, rng.next());
    ref.write(0, preload);
    auto wr = co_await fs.write(*f, 0, std::move(preload));
    CO_ASSERT_TRUE(wr.ok());
    auto fl = co_await fs.flush(*f);
    CO_ASSERT_TRUE(fl.ok());

    // Recent writes whose pages are still dirty when the crash hits: their
    // only on-disk copy is the redundancy, so a non-wipe rejoin must still
    // reconstruct them.
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t off = (i * 5) * kSu;
      Buffer data = Buffer::pattern(kSu, rng.next());
      ref.write(off, data);
      auto w = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(w.ok());
    }

    m.start();
    co.start();
    r.server(1).crash();
    co_await r.sim.sleep(sim::ms(200));

    // Degraded writes during the outage land only in the redundancy.
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t len = 1 + rng.below(2 * kSu);
      const std::uint64_t off = rng.below(kFile - len);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto w = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(w.ok());
      co_await r.sim.sleep(sim::ms(1));
    }

    r.server(1).restart(wipe);
    co_await await_idle(r, co, sim::sec(60));
    out->stats = co.stats();
    out->fenced = r.server(1).fenced();
    auto rd = co_await fs.read(*f, 0, kFile);
    CO_ASSERT_TRUE(rd.ok());
    out->byte_exact = *rd == ref.expect(0, kFile);
    m.stop();
    co.stop();
  }(rig, mon, coord, wipe, &out));
  return out;
}

// A non-wipe restart takes the delta path: only regions degraded-written
// during the outage or lost with the dirty page cache are reconstructed,
// which moves far less data than the wipe control's full rebuild — and the
// result is still byte-exact.
TEST(RebuildCoordinator, NonWipeRestartDeltaRebuilds) {
  const NonWipeOutcome delta = run_restart(/*wipe=*/false);
  EXPECT_GE(delta.stats.delta_rebuilds, 1u);
  EXPECT_EQ(delta.stats.full_rebuilds, 0u);
  EXPECT_EQ(delta.stats.rebuilds_failed, 0u);
  EXPECT_GT(delta.stats.lost_dirty_bytes, 0u);
  EXPECT_FALSE(delta.fenced);
  EXPECT_TRUE(delta.byte_exact);

  const NonWipeOutcome full = run_restart(/*wipe=*/true);
  EXPECT_GE(full.stats.full_rebuilds, 1u);
  EXPECT_FALSE(full.fenced);
  EXPECT_TRUE(full.byte_exact);
  EXPECT_LT(delta.stats.bytes_rebuilt, full.stats.bytes_rebuilt);
}

struct CapOutcome {
  RebuildStats stats;
  sim::Duration rebuild = 0;  // restart -> first admit
};

/// Wipe-rebuild a quiet rig (no foreground writes after the restart) under
/// `rate_cap` so the copy time is governed by the token bucket alone.
CapOutcome run_capped(double rate_cap) {
  Rig rig(rig_params());
  HealthParams hp;
  hp.interval = sim::ms(50);
  HealthMonitor mon(rig.client(), hp);
  rig.client_fs().enable_failover(&mon);
  RebuildParams rbp;
  rbp.rate_cap = rate_cap;
  RebuildCoordinator coord(rig, mon, rbp);

  CapOutcome out;
  run_sim_void(rig, [](Rig& r, HealthMonitor& m, RebuildCoordinator& co,
                       CapOutcome* out) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    co.track(*f, kFile);
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(kFile, 9));
    CO_ASSERT_TRUE(wr.ok());
    auto fl = co_await fs.flush(*f);
    CO_ASSERT_TRUE(fl.ok());
    m.start();
    co.start();
    r.server(1).crash();
    co_await r.sim.sleep(sim::ms(100));
    const sim::Time restart_at = r.sim.now();
    r.server(1).restart(/*wipe_disk=*/true);
    co_await await_idle(r, co, sim::sec(120));
    out->stats = co.stats();
    out->rebuild = co.stats().first_admit_at - restart_at;
    EXPECT_FALSE(r.server(1).fenced());
    m.stop();
    co.stop();
  }(rig, mon, coord, &out));
  return out;
}

// The token bucket bounds the reconstruction rate from above, so the
// rebuild cannot finish faster than bytes/rate (minus the initial burst) —
// and the whole throttled run is bit-deterministic.
TEST(RebuildCoordinator, RateCapBoundsRebuildDeterministically) {
  const double cap = 8.0 * 1024 * 1024;  // bytes/sec
  const CapOutcome a = run_capped(cap);
  EXPECT_GE(a.stats.rebuilds_completed, 1u);
  EXPECT_EQ(a.stats.rebuilds_failed, 0u);
  EXPECT_GT(a.stats.bytes_rebuilt, 0u);

  // Duration lower bound: everything beyond the burst is paced at `cap`.
  const double paced =
      static_cast<double>(a.stats.bytes_rebuilt) - (1 << 20);
  if (paced > 0) {
    EXPECT_GE(sim::to_seconds(a.rebuild), paced / cap * 0.95);
  }
  // Effective rate never exceeds the cap (burst allowance included).
  const double eff =
      static_cast<double>(a.stats.bytes_rebuilt) / sim::to_seconds(a.rebuild);
  EXPECT_LE(eff, cap * 1.05 + (1 << 20) / sim::to_seconds(a.rebuild));

  // Uncapped control must be faster.
  const CapOutcome un = run_capped(0.0);
  EXPECT_LT(un.rebuild, a.rebuild);

  // Bit-determinism: identical params => identical stats and timings.
  const CapOutcome b = run_capped(cap);
  EXPECT_EQ(a.rebuild, b.rebuild);
  EXPECT_EQ(a.stats.bytes_rebuilt, b.stats.bytes_rebuilt);
  EXPECT_EQ(a.stats.passes, b.stats.passes);
  EXPECT_EQ(a.stats.first_admit_at, b.stats.first_admit_at);
  EXPECT_EQ(a.stats.last_rebuild_time, b.stats.last_rebuild_time);
}

}  // namespace
}  // namespace csar::raid
