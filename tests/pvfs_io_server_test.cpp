// White-box I/O server protocol tests: request routing, overflow table
// semantics, invalidation edges, lock keying, failure responses, and the
// per-connection stream classes.
#include "pvfs/io_server.hpp"

#include <gtest/gtest.h>

#include "raid/diagnostics.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::pvfs {
namespace {

using csar::test::run_sim_void;
using raid::Rig;
using raid::RigParams;
using raid::Scheme;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme = Scheme::hybrid) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 3;
  return p;
}

/// Direct-RPC fixture: drive a single server through the client's rpc().
struct Fx {
  Rig rig;
  explicit Fx(RigParams p = rig_params()) : rig(p) {}

  Request make(Op op, std::uint64_t handle) {
    Request r;
    r.op = op;
    r.handle = handle;
    r.su = kSu;
    return r;
  }
};

TEST(IoServer, WriteThenReadData) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    Request w = f.make(Op::write_data, 7);
    w.off = 100;
    w.payload = Buffer::pattern(500, 1);
    auto wr = co_await f.rig.client().rpc(0, std::move(w));
    EXPECT_TRUE(wr.ok);

    Request r = f.make(Op::read_data, 7);
    r.off = 100;
    r.len = 500;
    auto rd = co_await f.rig.client().rpc(0, std::move(r));
    EXPECT_TRUE(rd.ok);
    EXPECT_EQ(rd.data, Buffer::pattern(500, 1));
  }(fx));
}

TEST(IoServer, OverflowEntryOverlaysDataFile) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    Request base = f.make(Op::write_data, 7);
    base.off = 0;
    base.payload = Buffer::pattern(2 * kSu, 1);
    (void)co_await f.rig.client().rpc(0, std::move(base));

    Request ov = f.make(Op::write_overflow, 7);
    ov.off = 100;
    ov.payload = Buffer::pattern(300, 2);
    ov.owner = 0;
    (void)co_await f.rig.client().rpc(0, std::move(ov));

    Request r = f.make(Op::read_data, 7);
    r.off = 0;
    r.len = kSu;
    auto rd = co_await f.rig.client().rpc(0, std::move(r));
    Buffer expect = Buffer::pattern(kSu, 1);
    expect.write_at(100, Buffer::pattern(300, 2));
    EXPECT_EQ(rd.data, expect);

    // Raw reads bypass the overlay: the base content is unchanged.
    Request raw = f.make(Op::read_data_raw, 7);
    raw.off = 0;
    raw.len = kSu;
    auto rd2 = co_await f.rig.client().rpc(0, std::move(raw));
    EXPECT_EQ(rd2.data, Buffer::pattern(kSu, 1));
  }(fx));
}

TEST(IoServer, InvalidationDropsOwnAndMirrorEntries) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    // Own entry on server 0, mirror entry (owner 2) also on server 0.
    Request own = f.make(Op::write_overflow, 7);
    own.off = 0;
    own.payload = Buffer::pattern(kSu, 1);
    own.owner = 0;
    (void)co_await f.rig.client().rpc(0, std::move(own));
    Request mirror = f.make(Op::write_overflow, 7);
    mirror.off = 5 * kSu;
    mirror.payload = Buffer::pattern(kSu, 2);
    mirror.owner = 2;
    mirror.mirror = true;
    (void)co_await f.rig.client().rpc(0, std::move(mirror));

    // A data write carrying both invalidation ranges.
    Request w = f.make(Op::write_data, 7);
    w.off = 0;
    w.payload = Buffer::pattern(kSu, 3);
    w.inval_own = {0, kSu};
    w.inval_mirror = {5 * kSu, 6 * kSu};
    (void)co_await f.rig.client().rpc(0, std::move(w));

    // The own entry no longer overlays...
    Request r = f.make(Op::read_data, 7);
    r.off = 0;
    r.len = kSu;
    auto rd = co_await f.rig.client().rpc(0, std::move(r));
    EXPECT_EQ(rd.data, Buffer::pattern(kSu, 3));
    // ...and the mirror table is empty for the invalidated range.
    Request rm = f.make(Op::read_mirror, 7);
    rm.off = 0;
    rm.len = 100 * kSu;
    rm.owner = 2;
    auto mirrors = co_await f.rig.client().rpc(0, std::move(rm));
    EXPECT_TRUE(mirrors.pieces.empty());
  }(fx));
}

TEST(IoServer, OverflowAllocationRoundsToStripeUnits) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      Request ov = f.make(Op::write_overflow, 9);
      ov.off = static_cast<std::uint64_t>(i) * kSu;
      ov.payload = Buffer::pattern(10, i);  // tiny
      ov.owner = 0;
      (void)co_await f.rig.client().rpc(0, std::move(ov));
    }
    Request q = f.make(Op::storage_query, 9);
    auto resp = co_await f.rig.client().rpc(0, std::move(q));
    EXPECT_EQ(resp.storage.overflow_bytes, 3u * kSu);
  }(fx));
}

TEST(IoServer, FailedServerRejectsEveryOp) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    f.rig.server(1).fail();
    for (Op op : {Op::read_data, Op::write_data, Op::read_red,
                  Op::write_red, Op::write_overflow, Op::flush,
                  Op::storage_query}) {
      Request r = f.make(op, 7);
      r.len = kSu;
      r.payload = Buffer::pattern(16, 0);
      auto resp = co_await f.rig.client().rpc(1, std::move(r));
      EXPECT_FALSE(resp.ok) << op_name(op);
      EXPECT_EQ(resp.err, Errc::server_failed) << op_name(op);
    }
  }(fx));
}

TEST(IoServer, LocksAreKeyedPerHandleAndBlock) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    // Lock (handle 7, block 0).
    Request r1 = f.make(Op::read_red, 7);
    r1.off = 0;
    r1.len = kSu;
    r1.lock = true;
    (void)co_await f.rig.client().rpc(0, std::move(r1));
    // A different block and a different handle proceed immediately...
    Request r2 = f.make(Op::read_red, 7);
    r2.off = kSu;  // block 1
    r2.len = kSu;
    r2.lock = true;
    auto resp2 = co_await f.rig.client().rpc(0, std::move(r2));
    EXPECT_TRUE(resp2.ok);
    Request r3 = f.make(Op::read_red, 8);
    r3.off = 0;
    r3.len = kSu;
    r3.lock = true;
    auto resp3 = co_await f.rig.client().rpc(0, std::move(r3));
    EXPECT_TRUE(resp3.ok);
    EXPECT_EQ(f.rig.server(0).lock_stats().acquisitions, 3u);
    EXPECT_EQ(f.rig.server(0).lock_stats().waits, 0u);
    // Release all three so teardown is clean.
    for (auto [h, off] : {std::pair<std::uint64_t, std::uint64_t>{7, 0},
                          {7, kSu},
                          {8, 0}}) {
      Request w = f.make(Op::write_red, h);
      w.off = off;
      w.payload = Buffer::pattern(kSu, 0);
      w.unlock = true;
      (void)co_await f.rig.client().rpc(0, std::move(w));
    }
  }(fx));
}

TEST(IoServer, TotalStorageAggregatesHandles) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    for (std::uint64_t h : {1ull, 2ull}) {
      Request w = f.make(Op::write_data, h);
      w.off = 0;
      w.payload = Buffer::pattern(kSu, h);
      (void)co_await f.rig.client().rpc(0, std::move(w));
    }
    const auto total = f.rig.server(0).total_storage();
    EXPECT_EQ(total.data_bytes, 2u * kSu);
  }(fx));
}

TEST(IoServer, DiagnosticsTableRenders) {
  Fx fx;
  run_sim_void(fx.rig, [](Fx& f) -> sim::Task<void> {
    Request w = f.make(Op::write_data, 1);
    w.payload = Buffer::pattern(kSu, 1);
    (void)co_await f.rig.client().rpc(0, std::move(w));
    co_return;
  }(fx));
  const std::string table = raid::rig_stats_table(fx.rig).to_string();
  EXPECT_NE(table.find("s0"), std::string::npos);
  EXPECT_NE(table.find("cache hit%"), std::string::npos);
}

}  // namespace
}  // namespace csar::pvfs
