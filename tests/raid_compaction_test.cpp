// The §6.7 cleaner: overflow compaction returns the Hybrid scheme's
// long-term storage to the RAID5 footprint without changing contents.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pvfs/io_server.hpp"
#include "raid/recovery.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::parity_consistent;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams hybrid_rig() {
  RigParams p;
  p.scheme = Scheme::hybrid;
  p.nservers = 5;
  return p;
}

TEST(Compaction, ContentPreservedStorageReclaimed) {
  Rig rig(hybrid_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(55);
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t off = rng.below(4 * w);
      const std::uint64_t len = 1 + rng.below(w);  // mostly partial stripes
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto before = co_await fs.storage(*f);
    EXPECT_GT(before.overflow_bytes, 0u);

    auto rc = co_await fs.compact(*f, ref.size());
    CO_ASSERT_TRUE(rc.ok());

    // Contents byte-identical.
    auto rd = co_await fs.read(*f, 0, ref.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, ref.expect(0, ref.size()));
    // All overflow gone; parity consistent with the (now complete) data.
    auto after = co_await fs.storage(*f);
    EXPECT_EQ(after.overflow_bytes, 0u);
    EXPECT_LT(after.data_bytes + after.red_bytes + after.overflow_bytes,
              before.data_bytes + before.red_bytes + before.overflow_bytes);
    const std::uint64_t padded = align_up(ref.size(), w);
    EXPECT_TRUE(co_await parity_consistent(r, *f, padded));
  }(rig));
}

TEST(Compaction, PostCompactionFailureToleranceIntact) {
  Rig rig(hybrid_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    RefFile ref;
    Rng rng(77);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(3 * w);
      const std::uint64_t len = 1 + rng.below(w);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto rc = co_await fs.compact(*f, ref.size());
    CO_ASSERT_TRUE(rc.ok());
    Recovery rec = r.recovery();
    for (std::uint32_t victim = 0; victim < r.p.nservers; ++victim) {
      r.server(victim).fail();
      auto rd = co_await rec.degraded_read(*f, 0, ref.size(), victim);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(0, ref.size())) << "victim " << victim;
      r.server(victim).recover();
    }
  }(rig));
}

TEST(Compaction, IdempotentAndCheapWhenClean) {
  Rig rig(hybrid_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();
    auto wr = co_await fs.write(*f, 0, Buffer::pattern(4 * w, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto rc1 = co_await fs.compact(*f, 4 * w);
    CO_ASSERT_TRUE(rc1.ok());
    auto s1 = co_await fs.storage(*f);
    auto rc2 = co_await fs.compact(*f, 4 * w);
    CO_ASSERT_TRUE(rc2.ok());
    auto s2 = co_await fs.storage(*f);
    EXPECT_EQ(s1.data_bytes, s2.data_bytes);
    EXPECT_EQ(s1.red_bytes, s2.red_bytes);
    EXPECT_EQ(s2.overflow_bytes, 0u);
  }(rig));
}

TEST(Compaction, ServerSideGcReclaimsDeadEntries) {
  // Repeated rewrites of the same block leave dead allocations behind; the
  // compact_overflow op alone (without the full-stripe rewrite) reclaims
  // them while keeping live entries readable.
  Rig rig(hybrid_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    for (int i = 0; i < 8; ++i) {
      auto wr = co_await fs.write(*f, 0, Buffer::pattern(100, i));
      CO_ASSERT_TRUE(wr.ok());
    }
    auto before = co_await fs.storage(*f);
    EXPECT_EQ(before.overflow_bytes, 16u * kSu);  // 8 rewrites x 2 copies

    // GC every server's overflow file directly.
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      pvfs::Request rq;
      rq.op = pvfs::Op::compact_overflow;
      rq.handle = f->handle;
      rq.su = kSu;
      auto resp = co_await r.client().rpc(s, std::move(rq));
      EXPECT_TRUE(resp.ok);
    }
    auto after = co_await fs.storage(*f);
    EXPECT_EQ(after.overflow_bytes, 2u * kSu);  // only the live pair
    auto rd = co_await fs.read(*f, 0, 100);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, Buffer::pattern(100, 7));
  }(rig));
}

TEST(Remove, PurgesServerStorage) {
  Rig rig(hybrid_rig());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("doomed", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await fs.write(*f, 100, Buffer::pattern(10 * kSu, 1));
    CO_ASSERT_TRUE(wr.ok());
    auto before = co_await fs.storage(*f);
    EXPECT_GT(before.data_bytes + before.red_bytes + before.overflow_bytes,
              0u);
    auto rm = co_await r.client().remove("doomed");
    EXPECT_TRUE(rm.ok());
    // Server files are gone.
    for (std::uint32_t s = 0; s < r.p.nservers; ++s) {
      const auto total = r.server(s).total_storage();
      EXPECT_EQ(total.data_bytes + total.red_bytes + total.overflow_bytes,
                0u)
          << "server " << s;
    }
    // And the name no longer resolves.
    auto gone = co_await fs.open("doomed");
    EXPECT_FALSE(gone.ok());
    // Removing twice reports not_found.
    auto again = co_await r.client().remove("doomed");
    EXPECT_FALSE(again.ok());
  }(rig));
}

}  // namespace
}  // namespace csar::raid
