// Client RPC robustness: per-call deadlines on the simulated clock, bounded
// retry with exponential backoff, and the distinct error codes a caller
// needs to tell a silent server from a refused connection.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::pvfs {
namespace {

using csar::test::run_sim_void;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::LinkFault;

raid::RigParams rig_params() {
  raid::RigParams p;
  p.nservers = 4;
  return p;
}

Request ping() {
  Request r;
  r.op = Op::ping;
  return r;
}

TEST(RpcRetry, DeadlineFiresOnSilentServer) {
  raid::Rig rig(rig_params());
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    // crash() is silent: no reply ever comes, unlike fail() which answers
    // with server_failed. Only the deadline can end the call.
    r.server(2).crash();
    RpcPolicy policy;
    policy.timeout = sim::ms(50);
    policy.max_attempts = 3;
    policy.jitter = 0.0;
    const sim::Time before = r.sim.now();
    auto resp = co_await r.client().rpc(2, ping(), policy);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.err, Errc::timeout);
    EXPECT_EQ(resp.server, 2);
    // Three 50 ms deadlines plus backoffs of 5 and 10 ms.
    EXPECT_GE(r.sim.now() - before, sim::ms(165));
    const auto& stats = r.client().rpc_stats();
    EXPECT_EQ(stats.sent, 3u);
    EXPECT_EQ(stats.retries, 2u);
    EXPECT_EQ(stats.timeouts, 3u);
  }(rig));
}

TEST(RpcRetry, GivesUpAfterMaxAttempts) {
  raid::Rig rig(rig_params());
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    r.server(0).crash();
    RpcPolicy policy;
    policy.timeout = sim::ms(20);
    policy.max_attempts = 5;
    auto resp = co_await r.client().rpc(0, ping(), policy);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(r.client().rpc_stats().sent, 5u);
    EXPECT_EQ(r.client().rpc_stats().retries, 4u);
    // A restarted server answers again — the same call now succeeds.
    r.server(0).restart(/*wipe_disk=*/false);
    auto again = co_await r.client().rpc(0, ping(), policy);
    EXPECT_TRUE(again.ok);
  }(rig));
}

TEST(RpcRetry, SucceedsAfterTransientMessageLoss) {
  raid::Rig rig(rig_params());
  std::vector<pvfs::IoServer*> servers;
  for (auto& s : rig.servers) servers.push_back(s.get());
  // Drop every client<->server-1 message for the first 40 ms; afterwards
  // the link heals and a retry gets through.
  FaultPlan plan;
  LinkFault lf;
  lf.a = rig.client().node_id();
  lf.b = rig.server(1).node_id();
  lf.start = 0;
  lf.end = sim::ms(40);
  lf.drop_p = 1.0;
  plan.links.push_back(lf);
  FaultInjector inj(rig.cluster, rig.fabric, servers, plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r, FaultInjector* in) -> sim::Task<void> {
    RpcPolicy policy;
    policy.timeout = sim::ms(25);
    policy.max_attempts = 4;
    auto resp = co_await r.client().rpc(1, ping(), policy);
    EXPECT_TRUE(resp.ok);
    EXPECT_GE(r.client().rpc_stats().retries, 1u);
    EXPECT_GE(r.client().rpc_stats().timeouts, 1u);
    EXPECT_GE(in->stats().msgs_dropped, 1u);
  }(rig, &inj));
}

TEST(RpcRetry, ResetSurfacesAsConnDropped) {
  raid::Rig rig(rig_params());
  std::vector<pvfs::IoServer*> servers;
  for (auto& s : rig.servers) servers.push_back(s.get());
  FaultPlan plan;
  LinkFault lf;
  lf.a = rig.client().node_id();
  lf.b = rig.server(3).node_id();
  lf.start = 0;
  lf.end = sim::sec(10);
  lf.reset_p = 1.0;
  plan.links.push_back(lf);
  FaultInjector inj(rig.cluster, rig.fabric, servers, plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r, FaultInjector* in) -> sim::Task<void> {
    RpcPolicy policy;
    policy.timeout = sim::ms(25);
    policy.max_attempts = 2;
    auto resp = co_await r.client().rpc(3, ping(), policy);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.err, Errc::conn_dropped);
    EXPECT_EQ(r.client().rpc_stats().resets, 2u);
    EXPECT_EQ(in->stats().msgs_reset, 2u);
    // A reset never reaches the wire, so nothing was dropped or delayed.
    EXPECT_EQ(in->stats().msgs_dropped, 0u);
  }(rig, &inj));
}

// --- metadata path: retried meta-RPCs must be idempotent ---

TEST(MetaRetry, RetriedCreateIsIdempotent) {
  raid::Rig rig(rig_params());
  std::vector<pvfs::IoServer*> servers;
  for (auto& s : rig.servers) servers.push_back(s.get());
  // Drop every manager->client reply for the first 40 ms: the create
  // executes, its reply dies, and the retry must be answered from the
  // manager's dedup table — not re-executed into `already_exists`.
  FaultPlan plan;
  LinkFault lf;
  lf.a = rig.manager->node_id();
  lf.b = rig.client().node_id();
  lf.bidirectional = false;
  lf.start = 0;
  lf.end = sim::ms(40);
  lf.drop_p = 1.0;
  plan.links.push_back(lf);
  FaultInjector inj(rig.cluster, rig.fabric, servers, plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    RpcPolicy policy;
    policy.timeout = sim::ms(25);
    policy.max_attempts = 4;
    policy.jitter = 0.0;
    r.client().set_rpc_policy(policy);
    auto f = co_await r.client().create("idem", r.layout(64 * 1024));
    CO_ASSERT_TRUE(f.ok());
    EXPECT_EQ(r.manager->file_count(), 1u);
    EXPECT_GE(r.manager->stats().dedup_hits, 1u);
    EXPECT_GE(r.manager->stats().dropped_replies, 1u);
    auto f2 = co_await r.client().open("idem");
    CO_ASSERT_TRUE(f2.ok());
    EXPECT_EQ(f2->handle, f->handle);
  }(rig));
}

TEST(MetaRetry, LossyLinkCreateOpenSetScheme) {
  raid::Rig rig(rig_params());
  std::vector<pvfs::IoServer*> servers;
  for (auto& s : rig.servers) servers.push_back(s.get());
  // A coin-flip loss in both directions: committed ops must never surface
  // as failures (already_exists / stale_generation) to the caller.
  FaultPlan plan;
  LinkFault lf;
  lf.a = rig.client().node_id();
  lf.b = rig.manager->node_id();
  lf.start = 0;
  lf.end = sim::ms(50);
  lf.drop_p = 0.5;
  plan.links.push_back(lf);
  FaultInjector inj(rig.cluster, rig.fabric, servers, plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    RpcPolicy policy;
    policy.timeout = sim::ms(20);
    policy.max_attempts = 6;
    r.client().set_rpc_policy(policy);
    auto f = co_await r.client().create("lossy", r.layout(64 * 1024));
    CO_ASSERT_TRUE(f.ok());
    auto o = co_await r.client().open("lossy");
    CO_ASSERT_TRUE(o.ok());
    EXPECT_EQ(o->handle, f->handle);
    auto s = co_await r.client().set_scheme(
        "lossy", raid::scheme_tag(raid::Scheme::raid1), 1);
    CO_ASSERT_TRUE(s.ok());
    auto fin = co_await r.client().open("lossy");
    CO_ASSERT_TRUE(fin.ok());
    EXPECT_EQ(fin->red_gen, 1u);
    EXPECT_EQ(r.manager->file_count(), 1u);
  }(rig));
}

TEST(MetaRetry, ResettingLinkMetaOpsRecover) {
  raid::Rig rig(rig_params());
  std::vector<pvfs::IoServer*> servers;
  for (auto& s : rig.servers) servers.push_back(s.get());
  FaultPlan plan;
  LinkFault lf;
  lf.a = rig.client().node_id();
  lf.b = rig.manager->node_id();
  lf.start = 0;
  lf.end = sim::ms(30);
  lf.reset_p = 1.0;
  plan.links.push_back(lf);
  FaultInjector inj(rig.cluster, rig.fabric, servers, plan);
  inj.start();
  run_sim_void(rig, [](raid::Rig& r) -> sim::Task<void> {
    RpcPolicy policy;
    policy.timeout = sim::ms(20);
    policy.max_attempts = 4;
    policy.backoff = sim::ms(20);
    policy.jitter = 0.0;
    r.client().set_rpc_policy(policy);
    // Resets until 30 ms; backoffs (20, 40 ms) carry a retry past the fault
    // window, so the create lands exactly once.
    auto f = co_await r.client().create("reset", r.layout(64 * 1024));
    CO_ASSERT_TRUE(f.ok());
    EXPECT_GE(r.client().rpc_stats().resets, 1u);
    EXPECT_EQ(r.manager->file_count(), 1u);
  }(rig));
}

TEST(RpcRetry, BackoffJitterIsDeterministicPerSeed) {
  // Two identically-seeded clients issue the same failing call; the total
  // elapsed time (which includes the jittered backoffs) must match exactly.
  sim::Duration elapsed[2];
  for (int i = 0; i < 2; ++i) {
    raid::Rig rig(rig_params());
    rig.client().seed_retry_rng(7);
    rig.server(1).crash();
    run_sim_void(rig,
                 [](raid::Rig& r, sim::Duration* out) -> sim::Task<void> {
                   RpcPolicy policy;
                   policy.timeout = sim::ms(30);
                   policy.max_attempts = 4;
                   const sim::Time before = r.sim.now();
                   auto resp = co_await r.client().rpc(1, ping(), policy);
                   EXPECT_FALSE(resp.ok);
                   *out = r.sim.now() - before;
                 }(rig, &elapsed[i]));
  }
  EXPECT_EQ(elapsed[0], elapsed[1]);
}

}  // namespace
}  // namespace csar::pvfs
