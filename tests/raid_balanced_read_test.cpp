// Mirror-balanced reads: content correctness and the bandwidth win of
// serving alternating units from both RAID1 copies.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::RefFile;
using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme = Scheme::raid1) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 4;
  return p;
}

TEST(BalancedRead, ContentIdenticalToPlainRead) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    RefFile ref;
    Rng rng(31);
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t off = rng.below(30 * kSu);
      const std::uint64_t len = 1 + rng.below(8 * kSu);
      Buffer data = Buffer::pattern(len, rng.next());
      ref.write(off, data);
      auto wr = co_await fs.write(*f, off, std::move(data));
      CO_ASSERT_TRUE(wr.ok());
    }
    // Arbitrary sub-ranges (aligned and not) agree with the reference.
    for (auto [off, len] : {std::pair<std::uint64_t, std::uint64_t>{0, 30 * kSu},
                            {100, 5000},
                            {3 * kSu, 4 * kSu},
                            {kSu - 1, 2}}) {
      auto rd = co_await fs.read_balanced(*f, off, len);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, ref.expect(off, len)) << "off " << off;
    }
  }(rig));
}

TEST(BalancedRead, SpreadsLoadAcrossBothCopies) {
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto wr = co_await fs.write(*f, 0, Buffer::phantom(64 * kSu));
    CO_ASSERT_TRUE(wr.ok());
    const sim::Time t0 = r.sim.now();
    auto plain = co_await fs.read(*f, 0, 64 * kSu);
    CO_ASSERT_TRUE(plain.ok());
    const sim::Duration plain_time = r.sim.now() - t0;
    const sim::Time t1 = r.sim.now();
    auto balanced = co_await fs.read_balanced(*f, 0, 64 * kSu);
    CO_ASSERT_TRUE(balanced.ok());
    const sim::Duration balanced_time = r.sim.now() - t1;
    // Half the units come off the mirror path: clearly faster.
    EXPECT_LT(balanced_time, plain_time);
  }(rig));
}

TEST(BalancedRead, FallsBackForOtherSchemes) {
  Rig rig(rig_params(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    Buffer data = Buffer::pattern(8 * kSu, 5);
    auto wr = co_await fs.write(*f, 100, data.slice(0, data.size()));
    CO_ASSERT_TRUE(wr.ok());
    auto rd = co_await fs.read_balanced(*f, 100, data.size());
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, data);  // plain read semantics, overflow merge included
  }(rig));
}

TEST(BalancedRead, SeesLatestDataAfterRewrites) {
  // Both copies must be current: rewrite blocks, then read each through
  // whichever copy the balancer picks.
  Rig rig(rig_params());
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    for (int round = 0; round < 3; ++round) {
      Buffer data = Buffer::pattern(16 * kSu, 100 + round);
      auto wr = co_await fs.write(*f, 0, data.slice(0, data.size()));
      CO_ASSERT_TRUE(wr.ok());
      auto rd = co_await fs.read_balanced(*f, 0, 16 * kSu);
      CO_ASSERT_TRUE(rd.ok());
      EXPECT_EQ(*rd, data) << "round " << round;
    }
  }(rig));
}

}  // namespace
}  // namespace csar::raid
