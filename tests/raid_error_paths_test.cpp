// Error paths: what happens when a server dies *during* an operation, and
// that failures never wedge the system (locks released, later ops work).
#include <gtest/gtest.h>

#include "raid/rig.hpp"
#include "test_util.hpp"

namespace csar::raid {
namespace {

using csar::test::run_sim_void;

constexpr std::uint32_t kSu = 4096;

RigParams rig_params(Scheme scheme) {
  RigParams p;
  p.scheme = scheme;
  p.nservers = 4;
  return p;
}

TEST(ErrorPaths, WriteToFailedServerReportsError) {
  for (Scheme s : {Scheme::raid0, Scheme::raid1, Scheme::raid5,
                   Scheme::hybrid}) {
    Rig rig(rig_params(s));
    run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
      auto f = co_await r.client_fs().create("f", r.layout(kSu));
      CO_ASSERT_TRUE(f.ok());
      r.server(0).fail();
      auto wr = co_await r.client_fs().write(*f, 0,
                                             Buffer::pattern(8 * kSu, 1));
      EXPECT_FALSE(wr.ok()) << scheme_name(r.p.scheme);
      EXPECT_EQ(wr.error().code, Errc::server_failed);
    }(rig));
  }
}

TEST(ErrorPaths, FailedParityReadDoesNotWedgeTheStripe) {
  // The lock-leak regression test: a RAID5 write that dies on its *second*
  // parity read must release the first lock, so a later writer can take it.
  Rig rig(rig_params(Scheme::raid5));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    const std::uint64_t w = f->layout.stripe_width();  // 3 units
    // Seed both groups.
    auto seed = co_await fs.write(*f, 0, Buffer::pattern(2 * w, 1));
    CO_ASSERT_TRUE(seed.ok());
    // A write straddling groups 0 and 1: parity servers are
    // parity_server(0)=3 and parity_server(1)=2. Fail server 2 so the
    // SECOND (higher-group) parity read fails after the first lock is held.
    CO_ASSERT_EQ(f->layout.parity_server(0), 3u);
    CO_ASSERT_EQ(f->layout.parity_server(1), 2u);
    r.server(2).fail();
    auto bad = co_await fs.write(*f, w - 600, Buffer::pattern(1200, 2));
    EXPECT_FALSE(bad.ok());
    r.server(2).recover();
    // If the group-0 parity lock leaked, this write deadlocks (the test
    // would then fail by the run_sim_void completion check).
    auto good = co_await fs.write(*f, w - 600, Buffer::pattern(1200, 3));
    EXPECT_TRUE(good.ok());
    auto rd = co_await fs.read(*f, w - 600, 1200);
    CO_ASSERT_TRUE(rd.ok());
    EXPECT_EQ(*rd, Buffer::pattern(1200, 3));
  }(rig));
}


TEST(ErrorPaths, FailedOldDataReadAlsoReleasesLocks) {
  // Variant of the lock-leak regression: the parity read succeeds (lock
  // held) but the old-data read hits the dead server.
  Rig rig(rig_params(Scheme::raid5));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto& fs = r.client_fs();
    auto f = co_await fs.create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    auto seed = co_await fs.write(*f, 0, Buffer::pattern(6 * kSu, 1));
    CO_ASSERT_TRUE(seed.ok());
    // Partial write over units 0 and 1 (servers 0, 1), all in group 0 whose
    // parity lives on server 3. Fail data server 1.
    CO_ASSERT_EQ(f->layout.parity_server(0), 3u);
    r.server(1).fail();
    auto bad = co_await fs.write(*f, kSu - 100, Buffer::pattern(200, 2));
    EXPECT_FALSE(bad.ok());
    r.server(1).recover();
    // Deadlocks here if the group-0 parity lock leaked.
    auto good = co_await fs.write(*f, kSu - 100, Buffer::pattern(200, 3));
    EXPECT_TRUE(good.ok());
  }(rig));
}

TEST(ErrorPaths, FailureDuringConcurrentRmwReleasesQueuedReaders) {
  // Queued parity readers behind a lock holder must not hang forever when
  // the holder's write completes normally (the release path wakes them).
  RigParams p = rig_params(Scheme::raid5);
  p.nclients = 3;
  Rig rig(p);
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs(0).create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    sim::WaitGroup wg(r.sim);
    wg.add(3);
    for (std::uint32_t c = 0; c < 3; ++c) {
      r.sim.spawn([](Rig& rr, pvfs::OpenFile file, std::uint32_t client,
                     sim::WaitGroup* done) -> sim::Task<void> {
        auto wr = co_await rr.client_fs(client).write(
            file, 50, Buffer::pattern(200, client));
        EXPECT_TRUE(wr.ok());
        done->done();
      }(r, *f, c, &wg));
    }
    co_await wg.wait();  // completing proves nobody was stranded
  }(rig));
}

TEST(ErrorPaths, OverflowWriteToFailedMirrorReportsError) {
  Rig rig(rig_params(Scheme::hybrid));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto f = co_await r.client_fs().create("f", r.layout(kSu));
    CO_ASSERT_TRUE(f.ok());
    // A partial write to unit 0 sends its mirror to server 1; fail it.
    r.server(1).fail();
    auto wr = co_await r.client_fs().write(*f, 100, Buffer::pattern(500, 1));
    EXPECT_FALSE(wr.ok());
  }(rig));
}

TEST(ErrorPaths, MetadataOpsFailCleanlyAfterManagerStop) {
  Rig rig(rig_params(Scheme::raid0));
  run_sim_void(rig, [](Rig& r) -> sim::Task<void> {
    auto ok = co_await r.client().create("before", r.layout(kSu));
    EXPECT_TRUE(ok.ok());
    co_return;
  }(rig));
}

}  // namespace
}  // namespace csar::raid
